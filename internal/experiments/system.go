package experiments

import (
	"io"
	"time"

	"adcnn/internal/baseline"
	"adcnn/internal/cluster"
	"adcnn/internal/core"
	"adcnn/internal/models"
	"adcnn/internal/perfmodel"
	"adcnn/internal/stats"
)

// Fig11Row is one model's latency comparison (Figure 11).
type Fig11Row struct {
	Model                string
	ADCNNMs, ADCNNCI     float64
	SingleDeviceMs       float64
	RemoteCloudMs        float64
	SpeedupVsSingle      float64
	SpeedupVsRemoteCloud float64
}

// Figure11Result compares ADCNN against the single-device and
// remote-cloud schemes on all five models.
type Figure11Result struct {
	Rows   []Fig11Row
	Images int
}

// Figure11 measures mean end-to-end latency over n images per model.
func Figure11(n int, o SimOptions) (*Figure11Result, error) {
	res := &Figure11Result{Images: n}
	for _, cfg := range models.FullScale() {
		sim, _, _, err := NewADCNNSim(cfg, o)
		if err != nil {
			return nil, err
		}
		mean, ci, _ := MeasureLatency(sim, n)
		single := baseline.SingleDevice(cfg, perfmodel.RaspberryPi())
		cloud := baseline.RemoteCloud(cfg, perfmodel.CloudServer(), perfmodel.WAN())
		res.Rows = append(res.Rows, Fig11Row{
			Model:   cfg.Name,
			ADCNNMs: mean, ADCNNCI: ci,
			SingleDeviceMs:       ms(single.Total()),
			RemoteCloudMs:        ms(cloud.Total()),
			SpeedupVsSingle:      ms(single.Total()) / mean,
			SpeedupVsRemoteCloud: ms(cloud.Total()) / mean,
		})
	}
	return res, nil
}

// MeanSpeedups returns the average speedups across models (the paper
// headlines 6.68× vs single device and 4.42× vs remote cloud).
func (r *Figure11Result) MeanSpeedups() (vsSingle, vsCloud float64) {
	for _, row := range r.Rows {
		vsSingle += row.SpeedupVsSingle
		vsCloud += row.SpeedupVsRemoteCloud
	}
	n := float64(len(r.Rows))
	return vsSingle / n, vsCloud / n
}

// WriteText prints the comparison.
func (r *Figure11Result) WriteText(w io.Writer) {
	fprintf(w, "Figure 11: end-to-end latency, mean over %d images (ms, ±CI95)\n", r.Images)
	fprintf(w, "  %-10s %14s %14s %14s %9s %9s\n",
		"model", "ADCNN", "single-dev", "remote-cloud", "×single", "×cloud")
	for _, row := range r.Rows {
		fprintf(w, "  %-10s %9.1f±%-4.1f %14.1f %14.1f %9.2f %9.2f\n",
			row.Model, row.ADCNNMs, row.ADCNNCI, row.SingleDeviceMs, row.RemoteCloudMs,
			row.SpeedupVsSingle, row.SpeedupVsRemoteCloud)
	}
	s, c := r.MeanSpeedups()
	fprintf(w, "  mean speedup: %.2fx vs single device, %.2fx vs remote cloud\n", s, c)
}

// Table3Result is the VGG16 latency breakdown of the three schemes.
type Table3Result struct {
	Rows []baseline.Breakdown
}

// Table3 reproduces the transmission/computation split for VGG16.
func Table3(o SimOptions) (*Table3Result, error) {
	cfg := models.VGG16()
	sim, _, _, err := NewADCNNSim(cfg, o)
	if err != nil {
		return nil, err
	}
	_, _, results := MeasureLatency(sim, 20)
	var xfer, comp time.Duration
	for _, r := range results {
		xfer += r.InputXfer + r.OutputXfer
		comp += r.ConvCompute + r.BackCompute
	}
	n := time.Duration(len(results))
	rows := []baseline.Breakdown{
		{Scheme: "ADCNN", Transmission: xfer / n, Computation: comp / n},
		baseline.SingleDevice(cfg, perfmodel.RaspberryPi()),
		baseline.RemoteCloud(cfg, perfmodel.CloudServer(), perfmodel.WAN()),
	}
	return &Table3Result{Rows: rows}, nil
}

// WriteText prints Table 3.
func (r *Table3Result) WriteText(w io.Writer) {
	fprintf(w, "Table 3: VGG16 latency breakdown\n")
	fprintf(w, "  %-14s %22s %14s\n", "scheme", "input/output transfer", "computation")
	for _, b := range r.Rows {
		fprintf(w, "  %-14s %20.2fms %12.2fms\n", b.Scheme, ms(b.Transmission), ms(b.Computation))
	}
}

// Fig12Row is one model's pruning effect at one link rate.
type Fig12Row struct {
	Model        string
	LinkMbps     float64
	WithMs       float64
	WithoutMs    float64
	ReductionPct float64
}

// Figure12Result shows the latency effect of output pruning at two
// transmission rates.
type Figure12Result struct{ Rows []Fig12Row }

// Figure12 measures latency with and without pruning at 87.72 and
// 12.66 Mbps for all five models.
func Figure12(n int, seed int64) (*Figure12Result, error) {
	res := &Figure12Result{}
	for _, link := range []perfmodel.LinkModel{perfmodel.WiFi(), perfmodel.WiFiSlow()} {
		for _, cfg := range models.FullScale() {
			var lat [2]float64
			for i, prune := range []bool{true, false} {
				o := SimOptions{Nodes: 8, Link: link, Pruning: prune, Seed: seed}
				sim, _, _, err := NewADCNNSim(cfg, o)
				if err != nil {
					return nil, err
				}
				mean, _, _ := MeasureLatency(sim, n)
				lat[i] = mean
			}
			res.Rows = append(res.Rows, Fig12Row{
				Model: cfg.Name, LinkMbps: link.BandwidthMbps,
				WithMs: lat[0], WithoutMs: lat[1],
				ReductionPct: 100 * (1 - lat[0]/lat[1]),
			})
		}
	}
	return res, nil
}

// MeanReduction returns the average latency reduction at one link rate.
func (r *Figure12Result) MeanReduction(mbps float64) float64 {
	var sum float64
	n := 0
	for _, row := range r.Rows {
		if row.LinkMbps == mbps {
			sum += row.ReductionPct
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// WriteText prints Figure 12.
func (r *Figure12Result) WriteText(w io.Writer) {
	fprintf(w, "Figure 12: effect of pruning under different transmission rates\n")
	fprintf(w, "  %-10s %10s %12s %12s %10s\n", "model", "link Mbps", "pruned(ms)", "raw(ms)", "saving")
	for _, row := range r.Rows {
		fprintf(w, "  %-10s %10.2f %12.1f %12.1f %9.1f%%\n",
			row.Model, row.LinkMbps, row.WithMs, row.WithoutMs, row.ReductionPct)
	}
	fprintf(w, "  mean saving: %.1f%% @87.72Mbps, %.1f%% @12.66Mbps\n",
		r.MeanReduction(87.72), r.MeanReduction(12.66))
}

// Fig13Row is one cluster size of Figure 13.
type Fig13Row struct {
	Nodes     int // 0 = single-device scheme
	LatencyMs float64
	Speedup   float64
	EnergyJ   float64 // per Conv node, per image
	PeakMemMB float64 // per Conv node
}

// Figure13Result is the scalability + energy/memory experiment.
type Figure13Result struct{ Rows []Fig13Row }

// Figure13 sweeps the number of Conv nodes for VGG16.
func Figure13(n int, o SimOptions) (*Figure13Result, error) {
	cfg := models.VGG16()
	single := baseline.SingleDevice(cfg, perfmodel.RaspberryPi())
	energyModel := perfmodel.PiEnergy()

	res := &Figure13Result{}
	// Single-device reference row: the device is busy the whole time and
	// holds the full model's working set.
	res.Rows = append(res.Rows, Fig13Row{
		Nodes:     0,
		LatencyMs: ms(single.Total()),
		Speedup:   1,
		EnergyJ:   energyModel.Energy(single.Total(), single.Total()),
		PeakMemMB: float64(largestWorkingSet(cfg)) / 1e6,
	})
	for _, k := range []int{2, 4, 6, 8} {
		opts := o
		opts.Nodes = k
		sim, nodes, _, err := NewADCNNSim(cfg, opts)
		if err != nil {
			return nil, err
		}
		mean, _, _ := MeasureLatency(sim, n)
		elapsed := sim.Elapsed()
		perImage := elapsed / time.Duration(n)
		row := Fig13Row{
			Nodes:     k,
			LatencyMs: mean,
			Speedup:   ms(single.Total()) / mean,
		}
		// Energy and memory of one representative Conv node.
		d := nodes[0]
		row.EnergyJ = d.Energy(energyModel, elapsed) / float64(n)
		row.PeakMemMB = float64(d.PeakMem()+cfg.Systemized().FrontWeightBytes()) / 1e6
		_ = perImage
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// largestWorkingSet approximates a single device's peak transient memory:
// the largest block ifmap+ofmap plus all weights.
func largestWorkingSet(cfg models.Config) int64 {
	var peak int64
	var weights int64
	for _, b := range cfg.Profile() {
		if v := b.IfmapBytes + b.OfmapBytes; v > peak {
			peak = v
		}
		weights += b.WeightBytes
	}
	weights += cfg.HeadProfile().WeightBytes
	return peak + weights
}

// WriteText prints Figure 13.
func (r *Figure13Result) WriteText(w io.Writer) {
	fprintf(w, "Figure 13: scalability, energy and memory vs number of Conv nodes (VGG16)\n")
	fprintf(w, "  %-6s %12s %9s %12s %12s\n", "nodes", "latency(ms)", "speedup", "energy(J)", "peakMem(MB)")
	for _, row := range r.Rows {
		label := "S"
		if row.Nodes > 0 {
			label = itoa(row.Nodes)
		}
		fprintf(w, "  %-6s %12.1f %9.2f %12.2f %12.1f\n",
			label, row.LatencyMs, row.Speedup, row.EnergyJ, row.PeakMemMB)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Fig14Row is one model of Figure 14.
type Fig14Row struct {
	Model            string
	ADCNNMs, ADCNNCI float64
	NeurosurgeonMs   float64
	AOFLMs           float64
}

// Figure14Result compares ADCNN with Neurosurgeon and AOFL.
type Figure14Result struct{ Rows []Fig14Row }

// Figure14 runs the three partitioning frameworks on YOLO, VGG16 and
// ResNet34.
func Figure14(n int, o SimOptions) (*Figure14Result, error) {
	res := &Figure14Result{}
	for _, cfg := range []models.Config{models.YOLO(), models.VGG16(), models.ResNet34()} {
		sim, _, _, err := NewADCNNSim(cfg, o)
		if err != nil {
			return nil, err
		}
		mean, ci, _ := MeasureLatency(sim, n)
		ns := baseline.Neurosurgeon(cfg, perfmodel.RaspberryPi(), perfmodel.CloudServer(), perfmodel.WAN())
		// AOFL partitions the input into one piece per device (paper
		// Section 7.4), unlike ADCNN's fine-grained tile grid.
		aofl := baseline.AOFL(cfg, AOFLGrid(cfg.Name, o.Nodes), o.Nodes, perfmodel.RaspberryPi(), o.Link)
		res.Rows = append(res.Rows, Fig14Row{
			Model: cfg.Name, ADCNNMs: mean, ADCNNCI: ci,
			NeurosurgeonMs: ms(ns.Total()), AOFLMs: ms(aofl.Total()),
		})
	}
	return res, nil
}

// MeanFactors returns ADCNN's mean advantage over the two baselines
// (paper: 2.8× vs Neurosurgeon, 1.6× vs AOFL).
func (r *Figure14Result) MeanFactors() (vsNS, vsAOFL float64) {
	for _, row := range r.Rows {
		vsNS += row.NeurosurgeonMs / row.ADCNNMs
		vsAOFL += row.AOFLMs / row.ADCNNMs
	}
	n := float64(len(r.Rows))
	return vsNS / n, vsAOFL / n
}

// WriteText prints Figure 14.
func (r *Figure14Result) WriteText(w io.Writer) {
	fprintf(w, "Figure 14: ADCNN vs Neurosurgeon vs AOFL (ms, ±CI95)\n")
	fprintf(w, "  %-10s %14s %14s %14s\n", "model", "ADCNN", "Neurosurgeon", "AOFL")
	for _, row := range r.Rows {
		fprintf(w, "  %-10s %9.1f±%-4.1f %14.1f %14.1f\n",
			row.Model, row.ADCNNMs, row.ADCNNCI, row.NeurosurgeonMs, row.AOFLMs)
	}
	ns, aofl := r.MeanFactors()
	fprintf(w, "  ADCNN advantage: %.2fx vs Neurosurgeon, %.2fx vs AOFL\n", ns, aofl)
}

// Fig15Point is one image of the Figure 15 time series.
type Fig15Point struct {
	Image       int
	LatencyMs   float64
	Alloc       []int
	Utilization []float64 // Figure 15(a): per-node effective CPU usage
}

// Figure15Result is the dynamic-adaptation experiment.
type Figure15Result struct {
	Points       []Fig15Point
	DegradeAt    int
	BeforeMs     float64 // steady latency before degradation
	PeakMs       float64 // latency right after degradation
	SettledMs    float64 // latency after adaptation
	AllocBefore  []int
	AllocSettled []int
}

// Figure15 processes images images of VGG16 on 8 nodes and throttles
// nodes 5-6 by 55% and 7-8 by 76% at the midpoint, exactly the paper's
// CPUlimit scenario.
func Figure15(images int, o SimOptions) (*Figure15Result, error) {
	sim, nodes, _, err := NewADCNNSim(models.VGG16(), o)
	if err != nil {
		return nil, err
	}
	mid := images / 2
	events := []cluster.ThrottleEvent{
		{Image: mid, DeviceID: 5, Fraction: 0.45},
		{Image: mid, DeviceID: 6, Fraction: 0.45},
		{Image: mid, DeviceID: 7, Fraction: 0.24},
		{Image: mid, DeviceID: 8, Fraction: 0.24},
	}
	_ = nodes
	results := sim.RunImages(images, events)
	res := &Figure15Result{DegradeAt: mid}
	for i, r := range results {
		res.Points = append(res.Points, Fig15Point{
			Image: i, LatencyMs: ms(r.Latency),
			Alloc:       append([]int(nil), r.Alloc...),
			Utilization: append([]float64(nil), r.Utilization...),
		})
	}
	res.BeforeMs = stats.Mean(latWindow(results, mid-5, mid))
	res.PeakMs = ms(results[mid].Latency)
	res.SettledMs = stats.Mean(latWindow(results, images-5, images))
	res.AllocBefore = append([]int(nil), results[mid-1].Alloc...)
	res.AllocSettled = append([]int(nil), results[images-1].Alloc...)
	return res, nil
}

// fmtUtil renders a utilization vector as percentages.
func fmtUtil(us []float64) string {
	out := "["
	for i, u := range us {
		if i > 0 {
			out += " "
		}
		out += itoa(int(u*100+0.5)) + "%"
	}
	return out + "]"
}

func latWindow(rs []core.ImageResult, lo, hi int) []float64 {
	out := make([]float64, 0, hi-lo)
	for _, r := range rs[lo:hi] {
		out = append(out, ms(r.Latency))
	}
	return out
}

// WriteText prints the Figure 15 summary and time series.
func (r *Figure15Result) WriteText(w io.Writer) {
	fprintf(w, "Figure 15: impact of node-performance variation (degrade at image %d)\n", r.DegradeAt)
	fprintf(w, "  steady before: %.1f ms | peak after degrade: %.1f ms | settled: %.1f ms\n",
		r.BeforeMs, r.PeakMs, r.SettledMs)
	fprintf(w, "  tiles before:  %v\n", r.AllocBefore)
	fprintf(w, "  tiles settled: %v\n", r.AllocSettled)
	if n := len(r.Points); n > 0 {
		fprintf(w, "  CPU util before:  %s\n", fmtUtil(r.Points[r.DegradeAt-1].Utilization))
		fprintf(w, "  CPU util settled: %s\n", fmtUtil(r.Points[n-1].Utilization))
	}
	fprintf(w, "  series (image latencyMs):")
	for _, p := range r.Points {
		if p.Image%5 == 0 {
			fprintf(w, " %d:%.0f", p.Image, p.LatencyMs)
		}
	}
	fprintf(w, "\n")
}

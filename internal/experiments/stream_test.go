package experiments

import "testing"

func TestThroughputBeatsInverseLatency(t *testing.T) {
	r, err := Throughput(30, DefaultSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.PipelineGain <= 1.0 {
			t.Errorf("%s: pipelining gain %.2f must exceed 1", row.Model, row.PipelineGain)
		}
		// Bounded admission keeps streamed latency within a small factor
		// of the isolated latency.
		if row.StreamedMs > 4*row.IsolatedMs {
			t.Errorf("%s: streamed latency %.1f grew unboundedly vs isolated %.1f",
				row.Model, row.StreamedMs, row.IsolatedMs)
		}
	}
}

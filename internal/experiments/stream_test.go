package experiments

import (
	"testing"
	"time"

	"adcnn/internal/fdsp"
	"adcnn/internal/models"
)

func TestThroughputBeatsInverseLatency(t *testing.T) {
	r, err := Throughput(30, DefaultSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.PipelineGain <= 1.0 {
			t.Errorf("%s: pipelining gain %.2f must exceed 1", row.Model, row.PipelineGain)
		}
		// Bounded admission keeps streamed latency within a small factor
		// of the isolated latency.
		if row.StreamedMs > 4*row.IsolatedMs {
			t.Errorf("%s: streamed latency %.1f grew unboundedly vs isolated %.1f",
				row.Model, row.StreamedMs, row.IsolatedMs)
		}
	}
}

// TestLivePipelinedBeatsSequential is the live-runtime counterpart of the
// simulator gain check above: with each Conv node's simulated device
// holding a tile for a fixed service time, a bounded Pipeline must
// overlap that hold with the Central's dispatch and back-layer work.
func TestLivePipelinedBeatsSequential(t *testing.T) {
	opt := models.Options{Grid: fdsp.Grid{Rows: 2, Cols: 2}}
	seq, pipe, err := livePipelineComparison(opt, 4, 24, 4, 3, 4*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	gain := pipe.ThroughputIPS / seq.ThroughputIPS
	if gain <= 1.05 {
		t.Fatalf("pipelined %.2f imgs/s vs sequential %.2f imgs/s (gain %.2fx): pipelining must pay",
			pipe.ThroughputIPS, seq.ThroughputIPS, gain)
	}
}

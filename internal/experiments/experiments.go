// Package experiments regenerates every table and figure of the paper's
// evaluation section. Each function returns a typed result with a
// WriteText method that prints the same rows/series the paper reports;
// cmd/adcnn-bench and the repository-level benchmarks call these.
//
// System-side experiments (Figures 11-15, Table 3) run the virtual-time
// simulator on full-scale model configs with the calibrated Raspberry
// Pi / WiFi / EC2 models. Accuracy-side experiments (Figure 10,
// Tables 1-2) actually train the sim-scale models on synthetic data.
package experiments

import (
	"fmt"
	"io"
	"time"

	"adcnn/internal/cluster"
	"adcnn/internal/core"
	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/perfmodel"
	"adcnn/internal/stats"
)

// SystemGrid returns the partition the paper uses for each model in the
// testbed experiments (Section 7.2): 8×8 for VGG16, ResNet34 and
// CharCNN, 4×8 for FCN, 4×4 for YOLO.
func SystemGrid(name string) fdsp.Grid {
	switch name {
	case "FCN":
		return fdsp.Grid{Rows: 4, Cols: 8}
	case "YOLO":
		return fdsp.Grid{Rows: 4, Cols: 4}
	case "CharCNN":
		return fdsp.Grid{Rows: 64, Cols: 1} // 1-D: 64 sequence segments
	default:
		return fdsp.Grid{Rows: 8, Cols: 8}
	}
}

// AOFLGrid returns the coarse one-piece-per-device partition AOFL uses
// (paper Section 7.4: "partition the input image spatially into eight
// pieces").
func AOFLGrid(name string, devices int) fdsp.Grid {
	if name == "CharCNN" {
		return fdsp.Grid{Rows: devices, Cols: 1}
	}
	rows := 2
	for rows*rows < devices {
		rows *= 2
	}
	cols := devices / rows
	if cols < 1 {
		cols = 1
	}
	return fdsp.Grid{Rows: rows, Cols: cols}
}

// PruneRatio returns the measured compressed/raw output ratio per model
// (paper Table 2).
func PruneRatio(name string) float64 {
	switch name {
	case "VGG16":
		return 0.032
	case "ResNet34":
		return 0.043
	case "FCN":
		return 0.011
	case "YOLO":
		return 0.020
	case "CharCNN":
		return 0.056
	default:
		return 0.03
	}
}

// SimOptions collects the common knobs for building an ADCNN simulation.
type SimOptions struct {
	Nodes   int
	Link    perfmodel.LinkModel
	Pruning bool
	Noise   float64
	Seed    int64
}

// DefaultSimOptions mirrors the paper's stable-environment testbed:
// 8 Conv nodes, 87.72 Mbps WiFi, pruning on, mild measurement noise.
func DefaultSimOptions() SimOptions {
	return SimOptions{Nodes: 8, Link: perfmodel.WiFi(), Pruning: true, Noise: 0.04, Seed: 1}
}

// NewADCNNSim builds the virtual-time simulator for one full-scale model
// under the system configuration (deep separable prefix, paper grids).
func NewADCNNSim(cfg models.Config, o SimOptions) (*core.Sim, []*cluster.Device, *cluster.Device, error) {
	nodes := cluster.NewPiCluster(o.Nodes)
	central := cluster.NewDevice(0, perfmodel.RaspberryPi())
	sim, err := core.NewSim(core.SimConfig{
		Model:      cfg.Systemized(),
		Grid:       SystemGrid(cfg.Name),
		Nodes:      nodes,
		Central:    central,
		Link:       o.Link,
		Pruning:    o.Pruning,
		PruneRatio: PruneRatio(cfg.Name),
		Gamma:      0.9,
		Pipeline:   true,
		Noise:      o.Noise,
		Seed:       o.Seed,
	})
	return sim, nodes, central, err
}

// MeasureLatency runs n images and returns mean and CI95 half-width in
// milliseconds, plus the raw per-image results.
func MeasureLatency(sim *core.Sim, n int) (mean, ci float64, results []core.ImageResult) {
	results = make([]core.ImageResult, 0, n)
	lat := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		r := sim.RunImage()
		results = append(results, r)
		lat = append(lat, r.Latency)
	}
	mean, ci = stats.CI95(stats.Durations(lat))
	return
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}

package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestFigure3ShapesMatchPaper(t *testing.T) {
	r := Figure3()
	if len(r.Models) != 4 {
		t.Fatalf("Figure 3 covers 4 models, got %d", len(r.Models))
	}
	// Early blocks dominate: paper reports the first 4 VGG16 blocks take
	// 41.4% of the total; accept a generous band around it.
	share := r.EarlyShare("VGG16", 4)
	if share < 0.3 || share > 0.65 {
		t.Fatalf("VGG16 first-4-block share = %.3f, paper ≈ 0.414", share)
	}
	// Ifmap size rises after block 1 and later falls for every model.
	for _, m := range r.Models {
		last := m.Blocks[len(m.Blocks)-1].IfmapMB
		peak := 0.0
		for _, b := range m.Blocks {
			if b.IfmapMB > peak {
				peak = b.IfmapMB
			}
		}
		if last >= peak {
			t.Errorf("%s: ifmap must shrink toward the end", m.Model)
		}
	}
	var buf bytes.Buffer
	r.WriteText(&buf)
	if !strings.Contains(buf.String(), "VGG16") || !strings.Contains(buf.String(), "CharCNN") {
		t.Fatal("text output incomplete")
	}
}

func TestRunAccuracyQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy; skipped in -short")
	}
	res, err := RunAccuracy(QuickAccuracySetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("expected 1 row, got %d", len(res.Rows))
	}
	row := res.Rows[0]
	if row.OrigMetric < 0.7 {
		t.Fatalf("original model too weak: %.3f", row.OrigMetric)
	}
	// Figure 10's claim: the retrained model recovers to within ~1% (we
	// allow the setup tolerance plus slack for the tiny dataset).
	if row.FinalMetric < row.OrigMetric-0.15 {
		t.Fatalf("retrained metric %.3f too far below original %.3f",
			row.FinalMetric, row.OrigMetric)
	}
	// Table 1's claim: a handful of epochs per stage, not hundreds.
	if row.TotalEpochs() > 3*QuickAccuracySetup().StageEpochs {
		t.Fatalf("epochs = %d exceeds budget", row.TotalEpochs())
	}
	// Table 2's claim: the pruned output is a small fraction of raw.
	if row.CompressionRatio <= 0 || row.CompressionRatio > 0.5 {
		t.Fatalf("compression ratio = %.4f, expected well below 0.5", row.CompressionRatio)
	}
	// Int8 inference on the retrained weights must be measured and stay
	// close to the f32 metric (the whole point of the quantized mode).
	if row.Int8Metric == 0 {
		t.Fatal("int8 metric not measured")
	}
	if d := row.Int8Delta(); d < -0.1 {
		t.Fatalf("int8 inference lost %.3f accuracy vs f32", -d)
	}
	var buf bytes.Buffer
	res.WriteText(&buf)
	for _, want := range []string{"Figure 10", "Table 1", "Table 2", "Int8 quantized inference"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("missing %q in text output", want)
		}
	}
}

func TestFigure11Shapes(t *testing.T) {
	r, err := Figure11(10, DefaultSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("expected 5 models, got %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.ADCNNMs >= row.SingleDeviceMs {
			t.Errorf("%s: ADCNN %.1f not faster than single device %.1f",
				row.Model, row.ADCNNMs, row.SingleDeviceMs)
		}
	}
	vsSingle, vsCloud := r.MeanSpeedups()
	// Paper: 6.68× and 4.42×. The calibrated simulator lands in the same
	// regime; assert the qualitative bands.
	if vsSingle < 3 || vsSingle > 10 {
		t.Fatalf("mean speedup vs single device = %.2f, paper 6.68", vsSingle)
	}
	if vsCloud < 2 || vsCloud > 10 {
		t.Fatalf("mean speedup vs remote cloud = %.2f, paper 4.42", vsCloud)
	}
}

func TestTable3Shapes(t *testing.T) {
	r, err := Table3(DefaultSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	var adcnn, single, cloud float64
	for _, b := range r.Rows {
		switch b.Scheme {
		case "ADCNN":
			adcnn = ms(b.Total())
			if ms(b.Transmission) >= ms(b.Computation) {
				t.Error("ADCNN must be compute-dominated (paper: 37ms vs 203ms)")
			}
		case "single-device":
			single = ms(b.Total())
			if b.Transmission != 0 {
				t.Error("single device transmits nothing")
			}
		case "remote-cloud":
			cloud = ms(b.Total())
			if b.Transmission < b.Computation {
				t.Error("remote cloud must be transmission-dominated")
			}
		}
	}
	if !(adcnn < cloud && cloud < single) {
		t.Fatalf("ordering ADCNN < cloud < single violated: %.0f %.0f %.0f", adcnn, cloud, single)
	}
}

func TestFigure12Shapes(t *testing.T) {
	r, err := Figure12(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	fast := r.MeanReduction(87.72)
	slow := r.MeanReduction(12.66)
	if fast <= 0 || slow <= 0 {
		t.Fatalf("pruning must reduce latency: %.1f%% / %.1f%%", fast, slow)
	}
	if slow <= fast {
		t.Fatalf("pruning must matter more on the slow link: %.1f%% vs %.1f%%", fast, slow)
	}
}

func TestFigure13Shapes(t *testing.T) {
	r, err := Figure13(6, DefaultSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Speedup grows with node count, sub-linearly.
	var prev float64
	for _, row := range r.Rows[1:] {
		if row.Speedup <= prev {
			t.Fatalf("speedup not increasing: %+v", r.Rows)
		}
		prev = row.Speedup
	}
	s2, s8 := r.Rows[1].Speedup, r.Rows[4].Speedup
	if s2 < 1.2 || s8 < 3.5 {
		t.Fatalf("speedups 2→%.2f 8→%.2f, paper 1.8→6.2", s2, s8)
	}
	// Energy and memory per Conv node decrease with more nodes, and both
	// sit below the single-device row.
	for i := 2; i < len(r.Rows); i++ {
		if r.Rows[i].EnergyJ >= r.Rows[i-1].EnergyJ {
			t.Fatalf("per-node energy must fall with cluster size: %+v", r.Rows)
		}
		if r.Rows[i].PeakMemMB >= r.Rows[i-1].PeakMemMB {
			t.Fatalf("per-node memory must fall with cluster size: %+v", r.Rows)
		}
	}
}

func TestFigure14Shapes(t *testing.T) {
	r, err := Figure14(10, DefaultSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.ADCNNMs >= row.AOFLMs {
			t.Errorf("%s: ADCNN %.1f must beat AOFL %.1f", row.Model, row.ADCNNMs, row.AOFLMs)
		}
		if row.AOFLMs >= row.NeurosurgeonMs {
			t.Errorf("%s: AOFL %.1f must beat Neurosurgeon %.1f", row.Model, row.AOFLMs, row.NeurosurgeonMs)
		}
	}
	ns, aofl := r.MeanFactors()
	// Paper: 2.8× and 1.6× — assert the same regime.
	if ns < 1.8 || ns > 6 {
		t.Fatalf("vs Neurosurgeon = %.2f, paper 2.8", ns)
	}
	if aofl < 1.2 || aofl > 4 {
		t.Fatalf("vs AOFL = %.2f, paper 1.6", aofl)
	}
}

func TestFigure15Shapes(t *testing.T) {
	r, err := Figure15(40, DefaultSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !(r.BeforeMs < r.SettledMs && r.SettledMs < r.PeakMs) {
		t.Fatalf("latency shape before<settled<peak violated: %.1f %.1f %.1f",
			r.BeforeMs, r.SettledMs, r.PeakMs)
	}
	// Tile shares shift toward healthy nodes 1-4.
	for k := 0; k < 4; k++ {
		if r.AllocSettled[k] <= r.AllocBefore[k] {
			t.Fatalf("healthy node %d should gain tiles: %v -> %v",
				k+1, r.AllocBefore, r.AllocSettled)
		}
	}
	for k := 4; k < 8; k++ {
		if r.AllocSettled[k] >= r.AllocBefore[k] {
			t.Fatalf("throttled node %d should lose tiles: %v -> %v",
				k+1, r.AllocBefore, r.AllocSettled)
		}
	}
	// Figure 15(a): effective CPU utilization of the throttled nodes drops
	// well below the healthy nodes' after degradation.
	settledU := r.Points[len(r.Points)-1].Utilization
	for k := 4; k < 8; k++ {
		if settledU[k] >= settledU[0] {
			t.Fatalf("throttled node %d utilization %.2f should be below healthy %.2f",
				k+1, settledU[k], settledU[0])
		}
	}
}

package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"adcnn/internal/core"
	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/telemetry"
	"adcnn/internal/tensor"
)

// ClusterBenchRun is one measured closed-loop pass over the shared pool.
type ClusterBenchRun struct {
	Replicas      int     `json:"replicas"`
	Images        int     `json:"images"`
	ThroughputIPS float64 `json:"throughput_ips"`
	MeanLatencyMs float64 `json:"mean_latency_ms"`
	P95LatencyMs  float64 `json:"p95_latency_ms"`
	Steals        []int64 `json:"steals"`
}

// ClusterImbalance is the work-stealing pass: open-loop offered load
// split unevenly across replica origins, judged by how close the
// per-origin client p99 latencies stay.
type ClusterImbalance struct {
	Images         int       `json:"images"`
	OfferedIPS     float64   `json:"offered_ips"`
	SplitRatio     string    `json:"split_ratio"`
	PerOriginP99Ms []float64 `json:"per_origin_p99_ms"`
	P99SpreadPct   float64   `json:"p99_spread_pct"`
	Steals         []int64   `json:"steals"` // steals during this pass only
}

// ClusterBenchReport pins the control-plane sharding properties.
//
// Throughput scaling: one Conv pool (live TCP, per-tile service delay
// standing in for device compute) is driven first by one Central
// replica, then by two through core.Cluster. Each replica runs at
// admission depth 1, so a single replica's throughput is bound by its
// own round trip (tile service + back layers) while most of the pool
// idles; the second replica's sessions fill that idle capacity. The
// affinity-tilted shares (sched.AffinityTilt) spread the replicas onto
// disjoint node subsets, so the acceptance gate is aggregate dual
// throughput ≥ 1.7× single.
//
// Work stealing: the same dual cluster is then offered an open-loop
// stream split 3:1 between the two replica origins, with the total
// rate chosen so the loaded origin alone exceeds its replica's
// capacity. Without stealing its queue diverges; with stealing the
// idle replica drains it, and the gate is per-origin client p99
// latencies within 25% of each other.
type ClusterBenchReport struct {
	Timestamp string `json:"timestamp"`
	telemetry.Host
	Model       string           `json:"model"`
	Grid        string           `json:"grid"`
	Nodes       int              `json:"nodes"`
	TileDelayMs float64          `json:"tile_delay_ms"`
	Depth       int              `json:"admission_depth"`
	Single      ClusterBenchRun  `json:"single_replica"`
	Dual        ClusterBenchRun  `json:"dual_replica"`
	SpeedupX    float64          `json:"speedup_x"` // dual / single throughput
	Imbalance   ClusterImbalance `json:"imbalance"`
}

// clusterPool starts n Conv nodes on loopback TCP, each a NodeServer
// over one worker whose simulated device takes delay per tile — the
// shared pool every replica dials into. stop closes the listeners and
// waits for every session goroutine.
func clusterPool(opt models.Options, n int, delay time.Duration) (addrs []string, stop func(), err error) {
	m, err := models.Build(models.VGGSim(), opt, 42)
	if err != nil {
		return nil, nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var lns []net.Listener
	for i := 0; i < n; i++ {
		w := core.NewWorker(i+1, m)
		w.Delay = delay
		ns := core.NewNodeServer(w, 0)
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			cancel()
			for _, l := range lns {
				l.Close()
			}
			return nil, nil, lerr
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
		wg.Add(1)
		go func(ln net.Listener, ns *core.NodeServer) {
			defer wg.Done()
			for {
				conn, aerr := ln.Accept()
				if aerr != nil {
					return
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					_ = ns.ServeConn(ctx, core.NewStreamConn(conn))
				}()
			}
		}(ln, ns)
	}
	stop = func() {
		cancel()
		for _, ln := range lns {
			ln.Close()
		}
		wg.Wait()
	}
	return addrs, stop, nil
}

// dialCluster builds a cluster of replicas over the pool at addrs, each
// replica with its own TCP connections and model instance.
func dialCluster(addrs []string, opt models.Options, replicas int) (*core.Cluster, error) {
	build := func(int) (*core.Central, error) {
		m, err := models.Build(models.VGGSim(), opt, 42)
		if err != nil {
			return nil, err
		}
		conns := make([]core.Conn, len(addrs))
		for i, a := range addrs {
			nc, derr := net.Dial("tcp", a)
			if derr != nil {
				return nil, derr
			}
			conns[i] = core.NewStreamConn(nc)
		}
		return core.NewCentral(m, conns, 2*time.Second, 0.9)
	}
	return core.NewCluster(build, core.ClusterOptions{
		Replicas: replicas, Depth: 1, RebalanceEvery: 100 * time.Millisecond,
	})
}

// clusterClosedLoop keeps every replica origin saturated with one image
// at a time (admission depth 1) and reports aggregate throughput over
// the measured images. warmup images per origin run first so Algorithm
// 2's estimates settle on each replica's node subset.
func clusterClosedLoop(cl *core.Cluster, images, warmup int) (ClusterBenchRun, error) {
	x := tensor.New(1, 3, 32, 32)
	x.RandN(rand.New(rand.NewSource(7)), 1)
	reps := cl.Replicas()
	pass := func(count int) ([]float64, time.Duration, error) {
		per := count / reps
		lats := make([][]float64, reps)
		errs := make(chan error, reps)
		var wg sync.WaitGroup
		start := time.Now()
		for o := 0; o < reps; o++ {
			wg.Add(1)
			go func(o int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					ch, err := cl.Submit(context.Background(), o, x)
					if err != nil {
						errs <- err
						return
					}
					r := <-ch
					if r.Err != nil {
						errs <- r.Err
						return
					}
					lats[o] = append(lats[o], ms(r.Stats.Latency))
				}
			}(o)
		}
		wg.Wait()
		wall := time.Since(start)
		select {
		case err := <-errs:
			return nil, 0, err
		default:
		}
		var all []float64
		for _, l := range lats {
			all = append(all, l...)
		}
		return all, wall, nil
	}
	if _, _, err := pass(warmup * reps); err != nil {
		return ClusterBenchRun{}, err
	}
	lat, wall, err := pass(images)
	if err != nil {
		return ClusterBenchRun{}, err
	}
	sort.Float64s(lat)
	var sum float64
	for _, v := range lat {
		sum += v
	}
	return ClusterBenchRun{
		Replicas:      reps,
		Images:        len(lat),
		ThroughputIPS: float64(len(lat)) / wall.Seconds(),
		MeanLatencyMs: sum / float64(len(lat)),
		P95LatencyMs:  lat[(len(lat)*95)/100],
		Steals:        cl.Steals(),
	}, nil
}

// clusterImbalance offers an open-loop stream at offered images/sec,
// routing 3 of every 4 submissions to origin 0, and measures per-origin
// client latency (submit to result, queueing included).
func clusterImbalance(cl *core.Cluster, images int, offered float64) (ClusterImbalance, error) {
	x := tensor.New(1, 3, 32, 32)
	x.RandN(rand.New(rand.NewSource(7)), 1)
	reps := cl.Replicas()
	stealsBefore := cl.Steals()
	interval := time.Duration(float64(time.Second) / offered)
	var mu sync.Mutex
	lats := make([][]float64, reps)
	var firstErr error
	var wg sync.WaitGroup
	next := time.Now()
	for i := 0; i < images; i++ {
		origin := 0
		if i%4 == 3 {
			origin = 1 % reps
		}
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		next = next.Add(interval)
		submitAt := time.Now()
		ch, err := cl.Submit(context.Background(), origin, x)
		if err != nil {
			return ClusterImbalance{}, err
		}
		wg.Add(1)
		go func(origin int, submitAt time.Time, ch <-chan core.ClusterResult) {
			defer wg.Done()
			r := <-ch
			mu.Lock()
			defer mu.Unlock()
			if r.Err != nil {
				if firstErr == nil {
					firstErr = r.Err
				}
				return
			}
			lats[origin] = append(lats[origin], ms(time.Since(submitAt)))
		}(origin, submitAt, ch)
	}
	wg.Wait()
	if firstErr != nil {
		return ClusterImbalance{}, firstErr
	}
	out := ClusterImbalance{
		Images:     images,
		OfferedIPS: offered,
		SplitRatio: "3:1",
	}
	lo, hi := 0.0, 0.0
	for o := 0; o < reps; o++ {
		if len(lats[o]) == 0 {
			return out, fmt.Errorf("origin %d received no results", o)
		}
		sort.Float64s(lats[o])
		p99 := lats[o][(len(lats[o])*99)/100]
		out.PerOriginP99Ms = append(out.PerOriginP99Ms, p99)
		if o == 0 || p99 < lo {
			lo = p99
		}
		if p99 > hi {
			hi = p99
		}
	}
	if lo > 0 {
		out.P99SpreadPct = (hi - lo) / lo * 100
	}
	after := cl.Steals()
	out.Steals = make([]int64, reps)
	for r := range after {
		out.Steals[r] = after[r] - stealsBefore[r]
	}
	return out, nil
}

// ClusterBench runs the control-plane sharding benchmark: single vs
// dual replica throughput over one shared 4-node pool, then the 3:1
// imbalance pass on the warmed dual cluster.
func ClusterBench(images int) (*ClusterBenchReport, error) {
	// The tile delay must dominate the Central's per-image CPU work
	// (partition + codec + back layers, ~2ms here): on few-core hosts
	// the replicas' CPU phases serialize, so aggregate dual throughput
	// is 2/(D+2C) against a single replica's 1/(D+C) — the speedup
	// only approaches 2 when C ≪ D.
	const (
		nodes     = 4
		tileDelay = 25 * time.Millisecond
	)
	// Two tiles per image over four nodes: each replica occupies two
	// nodes per image, so a second replica has two idle nodes' worth of
	// pool capacity to claim. The tilted shares steer it there.
	opt := models.Options{Grid: fdsp.Grid{Rows: 1, Cols: 2}}
	warmup := images / 5
	if warmup < 16 {
		warmup = 16
	}
	rep := &ClusterBenchReport{
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		Host:        telemetry.HostInfo(),
		Model:       models.VGGSim().Name,
		Grid:        "1x2",
		Nodes:       nodes,
		TileDelayMs: ms(tileDelay),
		Depth:       1,
	}

	addrs, stopPool, err := clusterPool(opt, nodes, tileDelay)
	if err != nil {
		return nil, err
	}
	defer stopPool()

	cl1, err := dialCluster(addrs, opt, 1)
	if err != nil {
		return nil, err
	}
	rep.Single, err = clusterClosedLoop(cl1, images, warmup)
	cl1.Shutdown()
	if err != nil {
		return nil, err
	}

	cl2, err := dialCluster(addrs, opt, 2)
	if err != nil {
		return nil, err
	}
	defer cl2.Shutdown()
	rep.Dual, err = clusterClosedLoop(cl2, images, warmup)
	if err != nil {
		return nil, err
	}
	if rep.Single.ThroughputIPS > 0 {
		rep.SpeedupX = rep.Dual.ThroughputIPS / rep.Single.ThroughputIPS
	}

	// Offered load: 75% of the measured dual capacity. Origin 0 then
	// carries 3/4 of it ≈ 1.13× one replica's capacity — overloaded,
	// so only stealing keeps its queue (and client p99) bounded.
	offered := 0.75 * rep.Dual.ThroughputIPS
	rep.Imbalance, err = clusterImbalance(cl2, images, offered)
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// WriteJSON writes the report, indented, to path.
func (r *ClusterBenchReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteText renders the scaling and stealing results.
func (r *ClusterBenchReport) WriteText(w io.Writer) {
	fprintf(w, "Control-plane sharding (%s %s, %d nodes, %.0fms/tile, depth %d, %s/%s, %d CPUs)\n",
		r.Model, r.Grid, r.Nodes, r.TileDelayMs, r.Depth, r.GOOS, r.GOARCH, r.NumCPU)
	fprintf(w, "  %-16s %10s %12s %12s %10s\n", "replicas", "imgs/sec", "mean(ms)", "p95(ms)", "steals")
	for _, row := range []ClusterBenchRun{r.Single, r.Dual} {
		fprintf(w, "  %-16d %10.2f %12.2f %12.2f %10v\n",
			row.Replicas, row.ThroughputIPS, row.MeanLatencyMs, row.P95LatencyMs, row.Steals)
	}
	fprintf(w, "  aggregate speedup: %.2fx (gate: >= 1.7x)\n", r.SpeedupX)
	fprintf(w, "Imbalance %s at %.0f imgs/sec offered over %d images:\n",
		r.Imbalance.SplitRatio, r.Imbalance.OfferedIPS, r.Imbalance.Images)
	fprintf(w, "  per-origin client p99 (ms): %v  spread %.1f%% (gate: <= 25%%)  steals %v\n",
		r.Imbalance.PerOriginP99Ms, r.Imbalance.P99SpreadPct, r.Imbalance.Steals)
}

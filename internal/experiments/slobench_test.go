package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestSLOBenchDetectsInjectedSlowNode runs the full injection experiment
// at reduced scale and asserts the acceptance criteria: the breach fires
// within two fast-window periods of the injection, the health scorer
// ranks the injected node worst, and the objective recovers after the
// node heals.
//
// The hard invariants (breach fires, flight ring dumps, recovery) must
// hold on every attempt. The two timing-sensitive criteria — detection
// latency and worst-node attribution — get retries, and if every
// attempt shows the healthy nodes scoring anomalous too (the signature
// of an oversubscribed host, e.g. `go test ./...` running every other
// package in parallel beside this one), the run is inconclusive about
// the engine rather than a failure of it, and the test skips.
func TestSLOBenchDetectsInjectedSlowNode(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live-cluster experiment")
	}
	const attempts = 3
	var rep *SLOBenchReport
	for i := 0; i < attempts; i++ {
		var err error
		rep, err = SLOBench(SLOBenchConfig{
			BaseDelay:  2 * time.Millisecond,
			FastWindow: 500 * time.Millisecond,
			SlowWindow: 1500 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("SLOBench: %v", err)
		}
		var sb strings.Builder
		rep.WriteText(&sb)
		t.Logf("attempt %d report:\n%s", i+1, sb.String())

		// Hard invariants: load can stretch the timeline, but the breach
		// machinery itself must work.
		if rep.BreachAtMs == 0 {
			t.Fatal("SLO never breached after the slow-node injection")
		}
		if rep.RecoverAtMs == 0 {
			t.Error("SLO never recovered after the node healed")
		}
		if rep.FlightDumps == 0 {
			t.Error("breach should have dumped the flight recorder")
		}
		if rep.BaselineP99Ms <= 0 || rep.ThresholdMs <= rep.BaselineP99Ms {
			t.Errorf("threshold %.2fms should sit above baseline p99 %.2fms",
				rep.ThresholdMs, rep.BaselineP99Ms)
		}
		if len(rep.Transitions) < 2 {
			t.Errorf("expected at least breach+recovery transitions, got %v", rep.Transitions)
		}
		if rep.WithinTwoFastWin && rep.WorstIsInjected {
			return
		}
		t.Logf("attempt %d: detection %.0fms (bound %.0fms), worst node %d (want %d) — retrying",
			i+1, rep.DetectionMs, 2*rep.FastWindowMs, rep.WorstNodeAtBreach, rep.InjectNode)
	}
	// Every attempt missed the timing/attribution bar. If the healthy
	// nodes also scored anomalous, the host was contended and the run
	// says nothing about the engine.
	anomalousHealthy := 0
	for n, h := range rep.HealthAtBreach {
		if n != rep.InjectNode && h > 1 {
			anomalousHealthy++
		}
	}
	if anomalousHealthy >= 2 {
		t.Skipf("host too contended for timing assertions: %d healthy nodes scored anomalous at breach (scores %v)",
			anomalousHealthy, rep.HealthAtBreach)
	}
	if !rep.WithinTwoFastWin {
		t.Errorf("detection latency %.0fms exceeds two fast windows (%.0fms)",
			rep.DetectionMs, 2*rep.FastWindowMs)
	}
	if !rep.WorstIsInjected {
		t.Errorf("worst-health node at breach = %d, want injected node %d (scores %v)",
			rep.WorstNodeAtBreach, rep.InjectNode, rep.HealthAtBreach)
	}
}

package experiments

import (
	"fmt"
	"io"

	"adcnn/internal/compress"
	"adcnn/internal/dataset"
	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/trainer"
)

// AccuracySetup parameterises the retraining experiments (Figure 10,
// Tables 1-2) on the sim-scale models.
type AccuracySetup struct {
	Models      []models.Config
	Grids       []fdsp.Grid // 1-D models automatically use {Rows,1}
	Samples     int         // total synthetic samples (3/4 train, 1/4 test)
	OrigEpochs  int         // epochs for the original model
	StageEpochs int         // max epochs per progressive stage
	Tolerance   float64     // allowed metric drop (paper: 1%)
	QuantBits   int
	Seed        int64
}

// QuickAccuracySetup is small enough for unit tests (~seconds).
func QuickAccuracySetup() AccuracySetup {
	return AccuracySetup{
		Models:      []models.Config{models.VGGSim()},
		Grids:       []fdsp.Grid{{Rows: 2, Cols: 2}},
		Samples:     128,
		OrigEpochs:  8,
		StageEpochs: 5,
		Tolerance:   0.05,
		QuantBits:   4,
		Seed:        1,
	}
}

// FullAccuracySetup covers the five models and the paper's partition
// sweep. (3×3 is omitted: the 32-pixel sim inputs are not divisible by
// 3; the remaining grids bracket the same range.)
func FullAccuracySetup() AccuracySetup {
	return AccuracySetup{
		Models:      models.SimScale(),
		Grids:       []fdsp.Grid{{Rows: 2, Cols: 2}, {Rows: 4, Cols: 4}, {Rows: 4, Cols: 8}, {Rows: 8, Cols: 8}},
		Samples:     256,
		OrigEpochs:  15,
		StageEpochs: 8,
		Tolerance:   0.02,
		QuantBits:   4,
		Seed:        1,
	}
}

// AccuracyRow is one (model, partition) cell of Figure 10, with the
// Table 1 epoch counts and the Table 2 compression ratio attached.
type AccuracyRow struct {
	Model string
	Grid  fdsp.Grid

	OrigMetric  float64
	FinalMetric float64
	// Int8Metric is the retrained model's metric with int8 quantized
	// inference enabled (per-channel weights, dynamic activation affine) —
	// the accuracy cost of the fast path, measured on the same test split.
	Int8Metric float64

	EpochsFDSP    int
	EpochsClipped int
	EpochsQuant   int

	CompressionRatio float64 // compressed/raw Conv-node output size
}

// TotalEpochs returns the Table 1 "Total" column.
func (r AccuracyRow) TotalEpochs() int { return r.EpochsFDSP + r.EpochsClipped + r.EpochsQuant }

// Int8Delta is the metric change from switching the retrained model to
// int8 inference (negative = int8 loses accuracy).
func (r AccuracyRow) Int8Delta() float64 { return r.Int8Metric - r.FinalMetric }

// AccuracyResult aggregates the retraining experiments.
type AccuracyResult struct {
	Rows []AccuracyRow
}

// RunAccuracy trains each original model once, then runs progressive
// retraining (Algorithm 1) for every partition, measuring the recovered
// metric, the per-stage epochs, and the Conv-node output compression.
func RunAccuracy(setup AccuracySetup) (*AccuracyResult, error) {
	res := &AccuracyResult{}
	for _, cfg := range setup.Models {
		data, err := synthSet(cfg, setup.Samples, setup.Seed)
		if err != nil {
			return nil, err
		}
		train, test := data.Split(setup.Samples * 3 / 4)

		ori, err := models.Build(cfg, models.Options{}, setup.Seed)
		if err != nil {
			return nil, err
		}
		tr := trainer.New(trainer.Params{
			LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4, BatchSize: 16, Seed: setup.Seed,
		})
		tr.Train(ori, train, setup.OrigEpochs)
		origMetric := trainer.Evaluate(ori, test, 16)
		// Grid-search clipped-ReLU bounds for ~95% output sparsity, the
		// regime behind the paper's Table 2 compression ratios.
		lo, hi := trainer.SearchClipBounds(ori, train, 8, 0.95)

		for _, g := range setup.Grids {
			grid := g
			if cfg.InputW == 1 {
				grid = fdsp.Grid{Rows: g.Rows * g.Cols, Cols: 1}
			}
			if cfg.InputH%grid.Rows != 0 || cfg.InputW%grid.Cols != 0 {
				continue // grid does not divide this input
			}
			if _, err := models.Build(cfg, models.Options{Grid: grid}, 0); err != nil {
				continue // tile too small for the front's pooling geometry
			}
			pc := trainer.ProgressiveConfig{
				Target: models.Options{
					Grid: grid, ClipLo: lo, ClipHi: hi, QuantBits: setup.QuantBits,
				},
				Tolerance:         setup.Tolerance,
				MaxEpochsPerStage: setup.StageEpochs,
				Seed:              setup.Seed + 7,
			}
			pres, err := trainer.ProgressiveRetrain(tr, cfg, ori, train, test, pc)
			if err != nil {
				return nil, fmt.Errorf("%s %v: %w", cfg.Name, grid, err)
			}
			row := AccuracyRow{
				Model: cfg.Name, Grid: grid,
				OrigMetric:  origMetric,
				FinalMetric: pres.FinalMetric(),
			}
			for _, st := range pres.Stages {
				switch st.Name {
				case "fdsp":
					row.EpochsFDSP = st.Epochs
				case "clipped-relu":
					row.EpochsClipped = st.Epochs
				case "quantization":
					row.EpochsQuant = st.Epochs
				}
			}
			row.CompressionRatio = measureCompression(pres.Final, test)
			// Measure the int8 inference delta on the retrained weights:
			// quantize, evaluate, then restore f32 so later stages (and the
			// caller) see the unmodified model.
			if _, err := pres.Final.QuantizeInt8(); err != nil {
				return nil, fmt.Errorf("%s %v: int8 quantize: %w", cfg.Name, grid, err)
			}
			row.Int8Metric = trainer.Evaluate(pres.Final, test, 16)
			pres.Final.ClearInt8()
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// synthSet builds the synthetic dataset matching a model's task.
func synthSet(cfg models.Config, n int, seed int64) (*dataset.Set, error) {
	switch cfg.Task {
	case models.TaskClassify:
		return dataset.Classification(n, cfg.Classes, cfg.InputC, cfg.InputH, cfg.InputW, 0.15, seed), nil
	case models.TaskSegment:
		return dataset.Segmentation(n, cfg.Classes, cfg.InputC, cfg.InputH, cfg.InputW, seed), nil
	case models.TaskDetect:
		dh, dw := cfg.TotalDownsample()
		return dataset.Cells(n, cfg.Classes, cfg.InputC, cfg.InputH, cfg.InputW,
			cfg.InputH/dh, cfg.InputW/dw, seed), nil
	case models.TaskText:
		return dataset.Text(n, cfg.Classes, cfg.InputC, cfg.InputH, seed), nil
	}
	return nil, fmt.Errorf("experiments: unknown task for %s", cfg.Name)
}

// measureCompression runs the final model's Front + clipped ReLU on test
// inputs and returns the mean compressed/raw size ratio (Table 2).
func measureCompression(m *models.Model, test *dataset.Set) float64 {
	if !m.Opt.Clipped() || m.Opt.QuantBits == 0 {
		return 1
	}
	p := compress.NewPipeline(m.Opt.QuantBits, m.Opt.ClipHi-m.Opt.ClipLo)
	samples := test.Len()
	if samples > 8 {
		samples = 8
	}
	var sum float64
	for i := 0; i < samples; i++ {
		x, _ := test.Batch(i, 1)
		y := m.Front.Forward(x, false)
		y = m.Boundary.Layers[0].Forward(y, false) // clipped ReLU
		sum += p.Ratio(y)
	}
	return sum / float64(samples)
}

// WriteText prints Figure 10 plus Tables 1 and 2.
func (r *AccuracyResult) WriteText(w io.Writer) {
	fprintf(w, "Figure 10: original vs retrained metric per partition\n")
	fprintf(w, "  %-14s %-6s %10s %10s %6s\n", "model", "grid", "original", "retrained", "drop")
	for _, row := range r.Rows {
		fprintf(w, "  %-14s %-6s %10.3f %10.3f %5.1f%%\n",
			row.Model, row.Grid.String(), row.OrigMetric, row.FinalMetric,
			100*(row.OrigMetric-row.FinalMetric))
	}
	fprintf(w, "\nTable 1: retraining epochs per modification (largest partition)\n")
	fprintf(w, "  %-14s %6s %14s %14s %7s\n", "model", "FDSP", "ClippedReLU", "Quantization", "Total")
	for _, row := range r.largestGridRows() {
		fprintf(w, "  %-14s %6d %14d %14d %7d\n",
			row.Model, row.EpochsFDSP, row.EpochsClipped, row.EpochsQuant, row.TotalEpochs())
	}
	fprintf(w, "\nTable 2: Conv-node output size after pruning (fraction of raw)\n")
	for _, row := range r.largestGridRows() {
		fprintf(w, "  %-14s %8.4fx\n", row.Model, row.CompressionRatio)
	}
	fprintf(w, "\nInt8 quantized inference: retrained metric vs int8 metric\n")
	fprintf(w, "  %-14s %-6s %10s %10s %7s\n", "model", "grid", "f32", "int8", "delta")
	for _, row := range r.Rows {
		fprintf(w, "  %-14s %-6s %10.3f %10.3f %+6.3f\n",
			row.Model, row.Grid.String(), row.FinalMetric, row.Int8Metric, row.Int8Delta())
	}
}

// largestGridRows returns each model's row with the most tiles (the 8×8
// column the paper's tables report).
func (r *AccuracyResult) largestGridRows() []AccuracyRow {
	best := map[string]AccuracyRow{}
	var order []string
	for _, row := range r.Rows {
		cur, ok := best[row.Model]
		if !ok {
			order = append(order, row.Model)
		}
		if !ok || row.Grid.Tiles() > cur.Grid.Tiles() {
			best[row.Model] = row
		}
	}
	out := make([]AccuracyRow, 0, len(order))
	for _, name := range order {
		out = append(out, best[name])
	}
	return out
}

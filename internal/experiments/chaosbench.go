package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"adcnn/internal/core"
	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/sched"
	"adcnn/internal/telemetry"
	"adcnn/internal/tensor"
)

// ChaosBench drives the live TCP runtime through a scripted fault
// schedule and asserts, per drill, that the observability stack saw
// what actually happened: the link profiler's estimates track an
// injected bandwidth collapse, the dispatch audit attributes the
// resulting reallocation to the link, the SLO engine breaches and the
// flight dump blames the faulted node, and everything recovers after
// the heal. Each drill runs on a fresh cluster — real TCP listeners,
// one NodeServer per node — so crashing a node is closing its socket,
// not flipping a flag.

// ChaosBenchConfig parameterizes the schedule; zero values take
// defaults sized for a ~10s-per-drill run.
type ChaosBenchConfig struct {
	Nodes         int           // cluster size (default 4)
	BaseDelay     time.Duration // healthy per-tile Conv service time (default 2ms)
	FastWindow    time.Duration // SLO fast burn window (default 500ms)
	SlowWindow    time.Duration // SLO slow burn window (default 2s)
	Baseline      time.Duration // healthy traffic before calibration (default 1.5×slow)
	Timeout       time.Duration // per-assertion wait bound (default 6×slow)
	ProbeInterval time.Duration // link probe cadence (default 25ms)
	ThrottleRate  int64         // bandwidth drill cap, bytes/sec (default 96 KiB/s)
	SlowFactor    float64       // slow-node drill service time, ×(baseline p99) (default 5)
	Skew          time.Duration // clock-skew drill injection (default 30ms)
	Drills        []string      // subset of bandwidth|crash|skew|slownode (default all)
}

func (c *ChaosBenchConfig) fill() {
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 2 * time.Millisecond
	}
	if c.FastWindow <= 0 {
		c.FastWindow = 500 * time.Millisecond
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = 2 * time.Second
	}
	if c.Baseline <= 0 {
		c.Baseline = c.SlowWindow + c.SlowWindow/2
	}
	if c.Timeout <= 0 {
		c.Timeout = 6 * c.SlowWindow
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 25 * time.Millisecond
	}
	if c.ThrottleRate <= 0 {
		c.ThrottleRate = 96 << 10
	}
	if c.SlowFactor <= 1 {
		c.SlowFactor = 5
	}
	if c.Skew <= 0 {
		c.Skew = 30 * time.Millisecond
	}
	if len(c.Drills) == 0 {
		c.Drills = []string{"bandwidth", "crash", "skew", "slownode"}
	}
}

// ChaosCheck is one drill assertion: what was checked, whether it
// held, and the measured detail behind the verdict.
type ChaosCheck struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail"`
}

// ChaosDrillResult is one drill's outcome; unused fields stay zero.
type ChaosDrillResult struct {
	Drill string `json:"drill"`
	Pass  bool   `json:"pass"`

	BaselineP99Ms float64 `json:"baseline_p99_ms"`
	ThresholdMs   float64 `json:"threshold_ms"`
	FaultAtMs     float64 `json:"fault_at_ms"`
	HealAtMs      float64 `json:"heal_at_ms"`
	BreachAtMs    float64 `json:"breach_at_ms,omitempty"`
	RecoverAtMs   float64 `json:"recover_at_ms,omitempty"`

	LinkUpBps       float64 `json:"link_up_bps,omitempty"`       // collapsed uplink estimate under throttle
	LinkDownBps     float64 `json:"link_down_bps,omitempty"`     // converged downlink estimate under throttle
	LinkRecoveryBps float64 `json:"link_recovery_bps,omitempty"` // uplink estimate after the heal
	OffsetNs        int64   `json:"offset_ns,omitempty"`         // converged estimate under skew
	Epochs          int     `json:"epochs,omitempty"`
	DumpReason      string  `json:"dump_reason,omitempty"`

	Images       int64                `json:"images"`
	FailedImages int64                `json:"failed_images"`
	DurationMs   float64              `json:"duration_ms"`
	Checks       []ChaosCheck         `json:"checks"`
	Transitions  []SLOTimedTransition `json:"transitions,omitempty"`
}

func (r *ChaosDrillResult) check(name string, ok bool, format string, args ...any) {
	r.Checks = append(r.Checks, ChaosCheck{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)})
	if !ok {
		r.Pass = false
	}
}

// ChaosReport is the persisted artifact (BENCH_chaos.json).
type ChaosReport struct {
	Timestamp string `json:"timestamp"`
	telemetry.Host
	Model string `json:"model"`
	Grid  string `json:"grid"`
	Nodes int    `json:"nodes"`

	FastWindowMs    float64 `json:"fast_window_ms"`
	SlowWindowMs    float64 `json:"slow_window_ms"`
	ProbeIntervalMs float64 `json:"probe_interval_ms"`
	ThrottleRateBps int64   `json:"throttle_rate_bps"`

	Pass   bool               `json:"pass"`
	Drills []ChaosDrillResult `json:"drills"`
}

// ChaosBench runs the drill schedule. The returned error covers
// infrastructure failures only; assertion failures land in the report
// with Pass=false.
func ChaosBench(cfg ChaosBenchConfig) (*ChaosReport, error) {
	cfg.fill()
	rep := &ChaosReport{
		Timestamp:       time.Now().UTC().Format(time.RFC3339),
		Host:            telemetry.HostInfo(),
		Model:           models.VGGSim().Name,
		Grid:            "2x2",
		Nodes:           cfg.Nodes,
		FastWindowMs:    ms(cfg.FastWindow),
		SlowWindowMs:    ms(cfg.SlowWindow),
		ProbeIntervalMs: ms(cfg.ProbeInterval),
		ThrottleRateBps: cfg.ThrottleRate,
		Pass:            true,
	}
	for _, name := range cfg.Drills {
		var fn func(*chaosCluster, *ChaosDrillResult)
		switch name {
		case "bandwidth":
			fn = drillBandwidth
		case "crash":
			fn = drillCrash
		case "skew":
			fn = drillSkew
		case "slownode":
			fn = drillSlowNode
		default:
			return nil, fmt.Errorf("experiments: unknown chaos drill %q", name)
		}
		res, err := runChaosDrill(cfg, name, fn)
		if err != nil {
			return nil, fmt.Errorf("experiments: chaos drill %s: %w", name, err)
		}
		rep.Drills = append(rep.Drills, *res)
		rep.Pass = rep.Pass && res.Pass
	}
	return rep, nil
}

// runChaosDrill builds a fresh cluster, calibrates the SLO objective
// off its healthy baseline, runs the drill, and tears everything down.
func runChaosDrill(cfg ChaosBenchConfig, name string, fn func(*chaosCluster, *ChaosDrillResult)) (*ChaosDrillResult, error) {
	cl, err := newChaosCluster(cfg)
	if err != nil {
		return nil, err
	}
	defer cl.stop()
	res := &ChaosDrillResult{Drill: name, Pass: true}
	start := time.Now()
	if err := cl.calibrate(res); err != nil {
		return nil, err
	}
	fn(cl, res)
	res.Images = cl.images.Load()
	res.FailedImages = cl.failed.Load()
	res.DurationMs = ms(time.Since(start))
	cl.mu.Lock()
	res.Transitions = append([]SLOTimedTransition(nil), cl.transitions...)
	cl.mu.Unlock()
	return res, nil
}

// chaosCluster is one drill's live runtime: a Central dialing real TCP
// listeners, closed-loop traffic, and the calibrated SLO engine.
type chaosCluster struct {
	cfg    ChaosBenchConfig
	ctx    context.Context
	cancel context.CancelFunc

	c      *core.Central
	nodes  []*chaosNode
	met    *core.Metrics
	flight *telemetry.FlightRecorder
	engine *telemetry.SLOEngine

	start  time.Time
	images atomic.Int64
	failed atomic.Int64
	done   chan struct{}

	mu          sync.Mutex
	transitions []SLOTimedTransition

	p99 float64 // calibrated healthy tile p99, seconds
}

func newChaosCluster(cfg ChaosBenchConfig) (*chaosCluster, error) {
	opt := models.Options{Grid: fdsp.Grid{Rows: 2, Cols: 2}}
	m, err := models.Build(models.VGGSim(), opt, 42)
	if err != nil {
		return nil, err
	}
	reg := telemetry.NewRegistry()
	met := core.NewMetrics(reg)
	met.Sched.AttachAudit(sched.NewAudit(0, nil))

	ctx, cancel := context.WithCancel(context.Background())
	cl := &chaosCluster{
		cfg: cfg, ctx: ctx, cancel: cancel,
		met: met, done: make(chan struct{}),
	}
	fail := func(err error) (*chaosCluster, error) {
		for _, n := range cl.nodes {
			n.crash()
		}
		cancel()
		return nil, err
	}

	conns := make([]core.Conn, cfg.Nodes)
	for k := 0; k < cfg.Nodes; k++ {
		n, err := startChaosNode(ctx, k, m, cfg.BaseDelay)
		if err != nil {
			return fail(err)
		}
		cl.nodes = append(cl.nodes, n)
		if conns[k], err = n.dial(ctx); err != nil {
			return fail(err)
		}
	}
	c, err := core.NewCentral(m, conns, 10*time.Second, 0.9)
	if err != nil {
		return fail(err)
	}
	for k, n := range cl.nodes {
		c.SetDialer(k, n.dial)
	}
	c.EnableLinkProbes(cfg.ProbeInterval)
	c.EnableLinkAware()
	c.SetMetrics(met)
	// A deep ring: closed-loop traffic emits thousands of tile events
	// per second, and the crash drill inspects markers recorded a
	// reconnect-backoff (~1-2s) before the check runs.
	cl.flight = telemetry.NewFlightRecorder(1 << 15)
	c.SetFlightRecorder(cl.flight)
	cl.c = c
	cl.start = time.Now()

	// Closed-loop traffic until the drill ends. Infer failures are
	// counted, not fatal: the crash drill asserts the count stays zero,
	// i.e. redispatch carried every stranded tile.
	go func() {
		defer close(cl.done)
		x := tensor.New(1, 3, 32, 32)
		x.RandN(rand.New(rand.NewSource(7)), 1)
		for ctx.Err() == nil {
			if _, _, err := c.Infer(x); err != nil {
				if ctx.Err() != nil {
					return
				}
				cl.failed.Add(1)
				wait(ctx, 5*time.Millisecond)
				continue
			}
			cl.images.Add(1)
		}
	}()
	return cl, nil
}

// calibrate waits out the healthy baseline, derives the latency
// objective (2.5× the observed tile p99), and starts the SLO engine.
func (cl *chaosCluster) calibrate(res *ChaosDrillResult) error {
	cfg := cl.cfg
	wait(cl.ctx, cfg.Baseline)
	p99 := cl.met.TileLatencyWindow.Quantile(cfg.SlowWindow, 0.99)
	if p99 <= 0 || p99 != p99 {
		return fmt.Errorf("no baseline traffic (p99=%v)", p99)
	}
	cl.p99 = p99
	threshold := 2.5 * p99
	res.BaselineP99Ms = p99 * 1e3
	res.ThresholdMs = threshold * 1e3

	engine := core.NewSLOEngine(cl.met, core.SLOConfig{
		TileP99:    threshold,
		MissBudget: -1, // latency objective only
		FastWindow: cfg.FastWindow,
		SlowWindow: cfg.SlowWindow,
	})
	cl.c.WireSLO(engine)
	engine.Subscribe(func(tr telemetry.SLOTransition) {
		cl.mu.Lock()
		cl.transitions = append(cl.transitions, SLOTimedTransition{AtMs: cl.sinceMs(tr.At), SLOTransition: tr})
		cl.mu.Unlock()
	})
	go engine.Run(cl.ctx, cfg.FastWindow/10)
	cl.engine = engine
	// Let the engine judge the healthy state before any fault lands.
	wait(cl.ctx, cfg.SlowWindow)
	return nil
}

func (cl *chaosCluster) sinceMs(t time.Time) float64 { return ms(t.Sub(cl.start)) }

// seen reports the first transition into state to at or after afterMs.
func (cl *chaosCluster) seen(to telemetry.SLOState, afterMs float64) (float64, bool) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	for _, tr := range cl.transitions {
		if tr.To == to && tr.AtMs >= afterMs {
			return tr.AtMs, true
		}
	}
	return 0, false
}

// session returns node k's debug snapshot.
func (cl *chaosCluster) session(k int) (core.SessionDebug, bool) {
	for _, s := range cl.c.DebugSessions() {
		if s.Node == k {
			return s, true
		}
	}
	return core.SessionDebug{}, false
}

// settleOK waits for the SLO engine to leave the breach state.
func (cl *chaosCluster) settleOK() bool {
	_, ok := waitFor(cl.ctx, cl.cfg.Timeout, func() (float64, bool) {
		if cl.engine.Breached() {
			return 0, false
		}
		return 1, true
	})
	return ok
}

func (cl *chaosCluster) stop() {
	cl.cancel()
	<-cl.done
	cl.c.Shutdown()
	for _, n := range cl.nodes {
		n.crash()
	}
}

// drillBandwidth collapses the last node's link to ThrottleRate and
// walks the observability chain in three acts. Act 1 runs speed-only
// dispatch (link-aware off), so every image keeps routing a tile over
// the collapsed link: the profiler's estimates converge onto the
// throttle rate, the SLO breaches, and the flight dump blames the
// node. Act 2 enables link-aware dispatch mid-breach: the audit must
// log a link-attributed reallocation that routes around the node and
// the breach must clear while the fault is still active. Act 3 heals
// the link: probation revival re-admits the starved node and the
// estimates recover.
func drillBandwidth(cl *chaosCluster, res *ChaosDrillResult) {
	cfg := cl.cfg
	target := cl.nodes[len(cl.nodes)-1]
	rate := float64(cfg.ThrottleRate)

	var healthyUp float64
	if s, ok := cl.session(target.idx); ok {
		healthyUp = s.UplinkBps
	}

	// Act 1: speed-only dispatch under the collapse.
	cl.c.DisableLinkAware()
	res.FaultAtMs = cl.sinceMs(time.Now())
	target.rate.Store(cfg.ThrottleRate)

	// The downlink carries the 3.3×-larger result tensors and the node
	// itself paces the throttled writes, so it is the direction where
	// the estimate must land inside the 25% band; the uplink estimate
	// is judged on detecting the collapse (order of magnitude down from
	// healthy), since probe echoes queued behind throttled transfers
	// bias its one-way delays.
	est, ok := waitFor(cl.ctx, cfg.Timeout, func() (float64, bool) {
		if s, ok := cl.session(target.idx); ok && s.DownlinkBps > 0 {
			if math.Abs(s.DownlinkBps-rate)/rate <= 0.25 {
				return s.DownlinkBps, true
			}
		}
		return 0, false
	})
	res.LinkDownBps = est
	res.check("link-estimate", ok,
		"downlink estimate %.0f B/s within 25%% of the %.0f B/s throttle", est, rate)
	if s, found := cl.session(target.idx); found {
		res.LinkUpBps = s.UplinkBps
		res.check("link-collapse", healthyUp > 0 && s.UplinkBps < healthyUp/4,
			"uplink estimate fell %.0f -> %.0f B/s under the throttle", healthyUp, s.UplinkBps)
	}

	breachAt, breached := waitFor(cl.ctx, cfg.Timeout, func() (float64, bool) {
		return cl.seen(telemetry.SLOBreach, res.FaultAtMs)
	})
	res.BreachAtMs = breachAt
	res.check("slo-breach", breached, "SLO breached %.0fms after the collapse", breachAt-res.FaultAtMs)
	if breached {
		wantBlame := fmt.Sprintf("worst-node=%d", target.idx)
		_, blamed := waitFor(cl.ctx, cfg.Timeout, func() (float64, bool) {
			for _, d := range cl.flight.Dumps() {
				if strings.Contains(d.Reason, "slo-breach") && strings.Contains(d.Reason, wantBlame) {
					res.DumpReason = d.Reason
					return 1, true
				}
			}
			return 0, false
		})
		res.check("flight-blame", blamed, "breach dump blames the throttled node: %q", res.DumpReason)
	}

	// Act 2: link-aware dispatch reroutes while the fault is live.
	enableWall := time.Now()
	cl.c.EnableLinkAware()
	wantTrig := fmt.Sprintf("link node=%d", target.idx)
	trig := ""
	_, ok = waitFor(cl.ctx, cfg.Timeout, func() (float64, bool) {
		for _, d := range cl.met.Sched.Audit().Decisions() {
			if d.At.After(enableWall) && strings.HasPrefix(d.Trigger, wantTrig) {
				trig = d.Trigger
				return 1, true
			}
		}
		return 0, false
	})
	res.check("audit-link-realloc", ok,
		"audit ring holds a link-attributed reallocation %q", trig)
	if breached {
		at, ok := waitFor(cl.ctx, cfg.Timeout, func() (float64, bool) {
			return cl.seen(telemetry.SLOOK, breachAt)
		})
		res.RecoverAtMs = at
		res.check("slo-reroute", ok && cl.settleOK(),
			"rerouting cleared the breach at %.0fms with the throttle still on", at)
	}

	// Act 3: heal; probation revival re-admits the starved node.
	healWall := time.Now()
	res.HealAtMs = cl.sinceMs(healWall)
	target.rate.Store(0)
	rec, ok := waitFor(cl.ctx, cfg.Timeout, func() (float64, bool) {
		if s, ok := cl.session(target.idx); ok && s.UplinkBps > 3*rate && s.DownlinkBps > 3*rate {
			return s.UplinkBps, true
		}
		return 0, false
	})
	res.LinkRecoveryBps = rec
	res.check("link-recovery", ok, "post-heal uplink estimate %.0f B/s (>3x the throttle)", rec)
	_, ok = waitFor(cl.ctx, cfg.Timeout, func() (float64, bool) {
		for _, d := range cl.met.Sched.Audit().Decisions() {
			if d.At.After(healWall) && target.idx < len(d.Next) && d.Next[target.idx] >= 1 {
				return float64(d.Next[target.idx]), true
			}
		}
		return 0, false
	})
	res.check("readmission", ok, "healed node re-entered the allocation (probation revival)")
	res.check("slo-settled", cl.settleOK(), "SLO engine settled after the heal")
}

// drillCrash kills the last node's listener and connections mid-run,
// restarts it on the same address, and asserts the session failed over
// (redispatch, zero failed images) and reconnected (epoch bump).
func drillCrash(cl *chaosCluster, res *ChaosDrillResult) {
	cfg := cl.cfg
	target := cl.nodes[len(cl.nodes)-1]
	res.FaultAtMs = cl.sinceMs(time.Now())
	target.crash()

	// Let traffic ride the degraded cluster: stranded tiles redispatch,
	// new allocations avoid the dead node.
	wait(cl.ctx, 400*time.Millisecond)
	res.HealAtMs = cl.sinceMs(time.Now())
	err := target.restart()
	res.check("restart", err == nil, "listener re-bound on %s (%v)", target.addr, err)

	var s core.SessionDebug
	_, ok := waitFor(cl.ctx, cfg.Timeout, func() (float64, bool) {
		if got, found := cl.session(target.idx); found && got.Alive && got.Epochs >= 2 {
			s = got
			return float64(got.Epochs), true
		}
		return 0, false
	})
	res.Epochs = s.Epochs
	res.check("reconnect", ok, "session alive again, epoch %d", s.Epochs)

	var down, re bool
	for _, ev := range cl.flight.Events() {
		switch ev.Kind {
		case "session-down":
			down = down || ev.Node == target.idx
		case "session-reconnect":
			re = re || ev.Node == target.idx
		}
	}
	// The event ring churns at thousands of tile events per second, so
	// the down marker may already be evicted by the time the reconnect
	// settles; the failover dump the transition triggered is durable
	// evidence of the same fact.
	if !down {
		for _, d := range cl.flight.Dumps() {
			if d.Reason == "session-failover" {
				down = true
				break
			}
		}
	}
	res.check("flight-events", down && re,
		"flight holds session-down=%v (event or failover dump) session-reconnect=%v for node %d", down, re, target.idx)
	res.check("no-failed-images", cl.failed.Load() == 0,
		"%d images failed across the crash (want 0: redispatch covers stranded tiles)", cl.failed.Load())
	res.check("slo-settled", cl.settleOK(), "SLO engine settled after the failover")
}

// drillSkew shifts the last node's monotonic clock and asserts the
// probe-fed offset estimator absorbs it in both directions without an
// SLO breach — skew must corrupt the phase decomposition only until
// the estimator catches up, never the Central-side latency SLO.
func drillSkew(cl *chaosCluster, res *ChaosDrillResult) {
	cfg := cl.cfg
	target := cl.nodes[len(cl.nodes)-1]
	skew := float64(cfg.Skew.Nanoseconds())

	_, warm := waitFor(cl.ctx, cfg.Timeout, func() (float64, bool) {
		if s, ok := cl.session(target.idx); ok && s.OffsetSamples >= 5 {
			return float64(s.OffsetSamples), true
		}
		return 0, false
	})
	res.check("probe-warmup", warm, "offset estimator warmed on probe echoes")

	res.FaultAtMs = cl.sinceMs(time.Now())
	target.w.SetClockSkew(cfg.Skew)
	// The node's stamps now read +skew, so the mapping back onto the
	// Central's clock must converge to −skew.
	off, ok := waitFor(cl.ctx, cfg.Timeout, func() (float64, bool) {
		if s, found := cl.session(target.idx); found {
			if math.Abs(float64(s.ClockOffsetNs)+skew) <= 0.3*skew {
				return float64(s.ClockOffsetNs), true
			}
		}
		return 0, false
	})
	res.OffsetNs = int64(off)
	res.check("offset-converges", ok,
		"offset estimate %.2fms after injecting +%.0fms skew (want ~-%.0fms)",
		off/1e6, skew/1e6, skew/1e6)

	res.HealAtMs = cl.sinceMs(time.Now())
	target.w.SetClockSkew(0)
	back, ok := waitFor(cl.ctx, cfg.Timeout, func() (float64, bool) {
		if s, found := cl.session(target.idx); found {
			if math.Abs(float64(s.ClockOffsetNs)) <= 0.3*skew {
				return float64(s.ClockOffsetNs), true
			}
		}
		return 0, false
	})
	res.check("offset-recovers", ok, "offset estimate back to %.2fms after removing the skew", back/1e6)

	_, breachSeen := cl.seen(telemetry.SLOBreach, res.FaultAtMs)
	res.check("no-breach", !breachSeen && !cl.engine.Breached(),
		"clock skew must not trip the Central-clock latency SLO")
}

// drillSlowNode is the gray-failure schedule: the last node serves
// tiles SlowFactor× slower, the SLO must breach with the health
// tracker blaming that node, and recover once it heals.
func drillSlowNode(cl *chaosCluster, res *ChaosDrillResult) {
	cfg := cl.cfg
	target := cl.nodes[len(cl.nodes)-1]
	inject := time.Duration(cfg.SlowFactor * cl.p99 * float64(time.Second))
	res.FaultAtMs = cl.sinceMs(time.Now())
	target.w.SetDelay(inject)

	breachAt, breached := waitFor(cl.ctx, cfg.Timeout, func() (float64, bool) {
		return cl.seen(telemetry.SLOBreach, res.FaultAtMs)
	})
	res.BreachAtMs = breachAt
	res.check("slo-breach", breached, "SLO breached %.0fms after the slowdown", breachAt-res.FaultAtMs)
	if breached {
		node, score, phase := cl.c.Health().Worst()
		res.check("health-blame", node == target.idx,
			"health tracker blames node %d (score %.2f, phase %s)", node, score, phase)
		wantBlame := fmt.Sprintf("worst-node=%d", target.idx)
		_, blamed := waitFor(cl.ctx, cfg.Timeout, func() (float64, bool) {
			for _, d := range cl.flight.Dumps() {
				if strings.Contains(d.Reason, "slo-breach") && strings.Contains(d.Reason, wantBlame) {
					res.DumpReason = d.Reason
					return 1, true
				}
			}
			return 0, false
		})
		res.check("flight-blame", blamed, "breach dump blames the slow node: %q", res.DumpReason)
	}

	res.HealAtMs = cl.sinceMs(time.Now())
	target.w.SetDelay(cfg.BaseDelay)
	if breached {
		at, ok := waitFor(cl.ctx, cfg.Timeout, func() (float64, bool) {
			return cl.seen(telemetry.SLOOK, res.HealAtMs)
		})
		res.RecoverAtMs = at
		res.check("slo-recovery", ok, "SLO back to ok %.0fms after the heal", at-res.HealAtMs)
	}
}

// chaosNode is one Conv node the harness owns end to end: its worker,
// its NodeServer, its TCP listener, and a rate cap its server-side
// connections enforce in both directions.
type chaosNode struct {
	idx  int
	addr string
	ctx  context.Context
	w    *core.Worker
	ns   *core.NodeServer
	rate atomic.Int64 // bytes/sec cap; 0 = unthrottled

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
}

func startChaosNode(ctx context.Context, idx int, m *models.Model, delay time.Duration) (*chaosNode, error) {
	w := core.NewWorker(idx+1, m)
	w.Delay = delay
	n := &chaosNode{
		idx: idx, ctx: ctx, w: w,
		ns:    core.NewNodeServer(w, 0),
		conns: make(map[net.Conn]struct{}),
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	n.addr = ln.Addr().String()
	n.serve(ln)
	return n, nil
}

// serve installs ln and runs its accept loop until the listener closes.
func (n *chaosNode) serve(ln net.Listener) {
	n.mu.Lock()
	n.ln = ln
	n.mu.Unlock()
	go func() {
		for {
			raw, err := ln.Accept()
			if err != nil {
				return
			}
			n.mu.Lock()
			n.conns[raw] = struct{}{}
			n.mu.Unlock()
			go func(raw net.Conn) {
				_ = n.ns.ServeConn(n.ctx, core.NewStreamConn(&throttledConn{Conn: raw, rate: &n.rate}))
				raw.Close()
				n.mu.Lock()
				delete(n.conns, raw)
				n.mu.Unlock()
			}(raw)
		}
	}()
}

// dial opens a fresh Central-side connection; it doubles as the
// session's reconnect dialer, so a restarted node is found at the same
// address.
func (n *chaosNode) dial(ctx context.Context) (core.Conn, error) {
	d := net.Dialer{Timeout: time.Second}
	raw, err := d.DialContext(ctx, "tcp", n.addr)
	if err != nil {
		return nil, err
	}
	return core.NewStreamConn(raw), nil
}

// crash closes the listener and every live server-side connection,
// keeping the address so restart revives the node in place.
func (n *chaosNode) crash() {
	n.mu.Lock()
	ln := n.ln
	n.ln = nil
	conns := make([]net.Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
}

// restart re-binds the node's original address (retrying briefly in
// case the old socket lingers) and resumes accepting.
func (n *chaosNode) restart() error {
	var err error
	for i := 0; i < 50; i++ {
		var ln net.Listener
		if ln, err = net.Listen("tcp", n.addr); err == nil {
			n.serve(ln)
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return err
}

// throttleChunk is the transfer granularity of a throttled connection:
// small enough that a collapsed link stays smooth at the drill's rates,
// large enough that the per-chunk sleep dominates syscall cost.
const throttleChunk = 512

// throttledConn enforces a bytes/sec cap on both directions of a
// server-side connection by sleeping after each chunk of I/O — reads
// model a collapsed uplink (Central→node tasks), writes a collapsed
// downlink (node→Central results). rate 0 passes through untouched.
type throttledConn struct {
	net.Conn
	rate *atomic.Int64
}

func (t *throttledConn) Read(p []byte) (int, error) {
	r := t.rate.Load()
	if r <= 0 {
		return t.Conn.Read(p)
	}
	if len(p) > throttleChunk {
		p = p[:throttleChunk]
	}
	n, err := t.Conn.Read(p)
	if n > 0 {
		time.Sleep(time.Duration(float64(n) / float64(r) * float64(time.Second)))
	}
	return n, err
}

func (t *throttledConn) Write(p []byte) (int, error) {
	var total int
	for len(p) > 0 {
		r := t.rate.Load()
		if r <= 0 {
			n, err := t.Conn.Write(p)
			return total + n, err
		}
		c := p
		if len(c) > throttleChunk {
			c = c[:throttleChunk]
		}
		n, err := t.Conn.Write(c)
		total += n
		if n > 0 {
			time.Sleep(time.Duration(float64(n) / float64(r) * float64(time.Second)))
		}
		if err != nil {
			return total, err
		}
		p = p[n:]
	}
	return total, nil
}

// WriteJSON writes the report, indented, to path.
func (r *ChaosReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteText renders the drill-by-drill verdicts.
func (r *ChaosReport) WriteText(w io.Writer) {
	fprintf(w, "Chaos drill schedule (%s %s, %d nodes, windows %.0fms/%.0fms, probes %.0fms, %d CPUs)\n",
		r.Model, r.Grid, r.Nodes, r.FastWindowMs, r.SlowWindowMs, r.ProbeIntervalMs, r.NumCPU)
	for _, d := range r.Drills {
		verdict := "PASS"
		if !d.Pass {
			verdict = "FAIL"
		}
		fprintf(w, "  [%s] %-9s p99 %.2fms -> objective %.2fms, %d images (%d failed), %.1fs\n",
			verdict, d.Drill, d.BaselineP99Ms, d.ThresholdMs, d.Images, d.FailedImages, d.DurationMs/1e3)
		for _, c := range d.Checks {
			mark := "ok  "
			if !c.OK {
				mark = "FAIL"
			}
			fprintf(w, "      %s %-18s %s\n", mark, c.Name, c.Detail)
		}
	}
	if r.Pass {
		fprintf(w, "  all drills passed\n")
	} else {
		fprintf(w, "  DRILL FAILURES — see above\n")
	}
}

package experiments

import (
	"encoding/json"
	"io"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"adcnn/internal/compress"
	"adcnn/internal/core"
	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/telemetry"
	"adcnn/internal/tensor"
)

// StreamBenchRun is one measured pass of the live pipelined stream.
type StreamBenchRun struct {
	Images        int     `json:"images"`
	ThroughputIPS float64 `json:"throughput_ips"`
	MeanLatencyMs float64 `json:"mean_latency_ms"`
	P95LatencyMs  float64 `json:"p95_latency_ms"`
}

// StreamBenchReport pins the telemetry instrumentation overhead on the
// live runtime hot path: the same image stream is run through a real
// Central + Conv-node cluster (in-process transport) with telemetry
// disabled and then fully enabled (metrics registry + tracer + wire
// metering + compression instruments), and the throughput delta is the
// cost of observability. The acceptance bound is < 2% regression.
type StreamBenchReport struct {
	Timestamp string `json:"timestamp"`
	telemetry.Host
	Model       string         `json:"model"`
	Grid        string         `json:"grid"`
	Nodes       int            `json:"nodes"`
	Disabled    StreamBenchRun `json:"telemetry_disabled"`
	Enabled     StreamBenchRun `json:"telemetry_enabled"`
	OverheadPct float64        `json:"overhead_pct"` // (off-on)/off × 100; negative = noise
}

// streamRuntime wires a live Central with n in-process workers.
func streamRuntime(opt models.Options, n int) (*core.Central, []*core.Worker, func(), error) {
	m, err := models.Build(models.VGGSim(), opt, 42)
	if err != nil {
		return nil, nil, nil, err
	}
	conns := make([]core.Conn, n)
	workers := make([]*core.Worker, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		a, b := core.Pipe()
		conns[i] = a
		workers[i] = core.NewWorker(i+1, m)
		wg.Add(1)
		go func(w *core.Worker, conn core.Conn) {
			defer wg.Done()
			_ = w.Serve(conn)
		}(workers[i], b)
	}
	c, err := core.NewCentral(m, conns, 10*time.Second, 0.9)
	if err != nil {
		return nil, nil, nil, err
	}
	return c, workers, func() { c.Shutdown(); wg.Wait() }, nil
}

// measureStream pushes images through the runtime and reports wall-clock
// throughput and per-image latency.
func measureStream(c *core.Central, images, warmup int) (StreamBenchRun, error) {
	x := tensor.New(1, 3, 32, 32)
	x.RandN(rand.New(rand.NewSource(7)), 1)
	for i := 0; i < warmup; i++ {
		if _, _, err := c.Infer(x); err != nil {
			return StreamBenchRun{}, err
		}
	}
	lat := make([]float64, 0, images)
	start := time.Now()
	for i := 0; i < images; i++ {
		_, st, err := c.Infer(x)
		if err != nil {
			return StreamBenchRun{}, err
		}
		lat = append(lat, ms(st.Latency))
	}
	wall := time.Since(start)
	sort.Float64s(lat)
	var sum float64
	for _, v := range lat {
		sum += v
	}
	p95 := lat[(len(lat)*95)/100]
	return StreamBenchRun{
		Images:        images,
		ThroughputIPS: float64(images) / wall.Seconds(),
		MeanLatencyMs: sum / float64(len(lat)),
		P95LatencyMs:  p95,
	}, nil
}

// StreamBench runs the telemetry-overhead experiment. The trace, when
// non-nil, is attached to the telemetry-enabled pass so the run doubles
// as a timeline capture.
func StreamBench(images int, trace *telemetry.Trace) (*StreamBenchReport, error) {
	const nodes = 4
	warmup := images / 5
	if warmup < 2 {
		warmup = 2
	}
	opt := models.Options{
		Grid:   fdsp.Grid{Rows: 4, Cols: 4},
		ClipLo: 0.05, ClipHi: 2.0, QuantBits: 4, // exercise the full compress path
	}

	rep := &StreamBenchReport{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Host:      telemetry.HostInfo(),
		Model:     models.VGGSim().Name,
		Grid:      "4x4",
		Nodes:     nodes,
	}

	// Pass 1: telemetry fully disabled.
	c, _, stop, err := streamRuntime(opt, nodes)
	if err != nil {
		return nil, err
	}
	rep.Disabled, err = measureStream(c, images, warmup)
	stop()
	if err != nil {
		return nil, err
	}

	// Pass 2: everything on — metrics registry shared by Central and
	// workers, wire metering, compression instruments, tracer.
	reg := telemetry.NewRegistry()
	met := core.NewMetrics(reg)
	compress.Instrument(reg)
	defer compress.Instrument(nil)
	c, workers, stop, err := streamRuntime(opt, nodes)
	if err != nil {
		return nil, err
	}
	for _, w := range workers {
		w.Metrics = met
	}
	c.SetMetrics(met)
	c.SetTrace(trace)
	rep.Enabled, err = measureStream(c, images, warmup)
	stop()
	if err != nil {
		return nil, err
	}

	rep.OverheadPct = (rep.Disabled.ThroughputIPS - rep.Enabled.ThroughputIPS) /
		rep.Disabled.ThroughputIPS * 100
	return rep, nil
}

// WriteJSON writes the report, indented, to path.
func (r *StreamBenchReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteText renders the overhead comparison.
func (r *StreamBenchReport) WriteText(w io.Writer) {
	fprintf(w, "Live-stream telemetry overhead (%s %s, %d nodes, %s/%s, %d CPUs)\n",
		r.Model, r.Grid, r.Nodes, r.GOOS, r.GOARCH, r.NumCPU)
	fprintf(w, "  %-20s %10s %12s %12s\n", "telemetry", "imgs/sec", "mean(ms)", "p95(ms)")
	for _, row := range []struct {
		name string
		run  StreamBenchRun
	}{{"disabled", r.Disabled}, {"enabled", r.Enabled}} {
		fprintf(w, "  %-20s %10.2f %12.2f %12.2f\n",
			row.name, row.run.ThroughputIPS, row.run.MeanLatencyMs, row.run.P95LatencyMs)
	}
	fprintf(w, "  overhead: %.2f%% of throughput\n", r.OverheadPct)
}

package experiments

import (
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"adcnn/internal/compress"
	"adcnn/internal/core"
	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/telemetry"
	"adcnn/internal/tensor"
)

// StreamBenchRun is one measured pass of the live pipelined stream.
type StreamBenchRun struct {
	Images        int     `json:"images"`
	ThroughputIPS float64 `json:"throughput_ips"`
	MeanLatencyMs float64 `json:"mean_latency_ms"`
	P95LatencyMs  float64 `json:"p95_latency_ms"`
}

// StreamBenchReport pins two properties of the live runtime hot path.
//
// First, telemetry overhead: the same image stream is run through a real
// Central + Conv-node cluster (in-process transport) with telemetry
// disabled and then fully enabled (metrics registry + tracer + wire
// metering + compression instruments), and the throughput delta is the
// cost of observability. The acceptance bound is < 2% regression.
//
// Second, pipelining gain: with a per-tile worker delay standing in for
// real Conv-node compute, the same stream is run once sequentially
// (Infer loop) and once through a bounded Pipeline, so image i+1's
// tiles are in flight while image i's results are still collecting —
// the live counterpart of the simulator's three-stage overlap
// (paper Fig. 9). Pipelined throughput must beat sequential.
type StreamBenchReport struct {
	Timestamp string `json:"timestamp"`
	telemetry.Host
	Model          string         `json:"model"`
	Grid           string         `json:"grid"`
	Nodes          int            `json:"nodes"`
	Disabled       StreamBenchRun `json:"telemetry_disabled"`
	Enabled        StreamBenchRun `json:"telemetry_enabled"`
	OverheadPct    float64        `json:"overhead_pct"` // (off-on)/off × 100; negative = noise
	LiveGrid       string         `json:"live_grid"`    // partition used by the live passes
	PipelineDepth  int            `json:"pipeline_depth"`
	TileDelayMs    float64        `json:"tile_delay_ms"` // simulated Conv service time per tile
	LiveSequential StreamBenchRun `json:"live_sequential"`
	LivePipelined  StreamBenchRun `json:"live_pipelined"`
	PipelineGain   float64        `json:"pipeline_gain"` // pipelined / sequential throughput
	// PhaseMeansMs is the mean per-tile latency decomposition from the
	// telemetry-enabled pass (dispatch_queue, uplink, node_queue,
	// compute, downlink, collect), and PhaseSumVsTotalPct the relative
	// gap between the summed phases and the measured end-to-end tile
	// latency — ~0 by construction, tracked so a regression in the
	// reconstruction shows up in the persisted report.
	PhaseMeansMs       map[string]float64 `json:"phase_means_ms,omitempty"`
	PhaseTiles         int                `json:"phase_tiles,omitempty"`
	PhaseSumVsTotalPct float64            `json:"phase_sum_vs_total_pct"`
}

// streamRuntime wires a live Central with n in-process workers. setup,
// when non-nil, configures each worker (delay, metrics) before its Serve
// goroutine starts — mutating Worker fields after Serve is running races
// with its reads.
func streamRuntime(opt models.Options, n int, setup func(*core.Worker)) (*core.Central, []*core.Worker, func(), error) {
	m, err := models.Build(models.VGGSim(), opt, 42)
	if err != nil {
		return nil, nil, nil, err
	}
	conns := make([]core.Conn, n)
	workers := make([]*core.Worker, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		a, b := core.Pipe()
		conns[i] = a
		workers[i] = core.NewWorker(i+1, m)
		if setup != nil {
			setup(workers[i])
		}
		wg.Add(1)
		go func(w *core.Worker, conn core.Conn) {
			defer wg.Done()
			_ = w.Serve(context.Background(), conn)
		}(workers[i], b)
	}
	c, err := core.NewCentral(m, conns, 10*time.Second, 0.9)
	if err != nil {
		return nil, nil, nil, err
	}
	return c, workers, func() { c.Shutdown(); wg.Wait() }, nil
}

// summarize folds per-image latencies and the wall clock into a run row.
func summarize(images int, lat []float64, wall time.Duration) StreamBenchRun {
	sort.Float64s(lat)
	var sum float64
	for _, v := range lat {
		sum += v
	}
	return StreamBenchRun{
		Images:        images,
		ThroughputIPS: float64(images) / wall.Seconds(),
		MeanLatencyMs: sum / float64(len(lat)),
		P95LatencyMs:  lat[(len(lat)*95)/100],
	}
}

// measureStream pushes images through the runtime one at a time and
// reports wall-clock throughput and per-image latency. observe, when
// non-nil, sees every measured image's stats (for phase accumulation).
func measureStream(c *core.Central, images, warmup int, observe func(core.InferStats)) (StreamBenchRun, error) {
	x := tensor.New(1, 3, 32, 32)
	x.RandN(rand.New(rand.NewSource(7)), 1)
	for i := 0; i < warmup; i++ {
		if _, _, err := c.Infer(x); err != nil {
			return StreamBenchRun{}, err
		}
	}
	lat := make([]float64, 0, images)
	start := time.Now()
	for i := 0; i < images; i++ {
		_, st, err := c.Infer(x)
		if err != nil {
			return StreamBenchRun{}, err
		}
		lat = append(lat, ms(st.Latency))
		if observe != nil {
			observe(st)
		}
	}
	return summarize(images, lat, time.Since(start)), nil
}

// measurePipelined streams the same images through a bounded Pipeline so
// successive images overlap. Per-image latency includes queue wait, so it
// rises with depth even as throughput improves — that trade is the point.
func measurePipelined(c *core.Central, images, warmup, depth int) (StreamBenchRun, error) {
	x := tensor.New(1, 3, 32, 32)
	x.RandN(rand.New(rand.NewSource(7)), 1)
	for i := 0; i < warmup; i++ {
		if _, _, err := c.Infer(x); err != nil {
			return StreamBenchRun{}, err
		}
	}
	p := core.NewPipeline(c, depth)
	in := make(chan *tensor.Tensor)
	go func() {
		defer close(in)
		for i := 0; i < images; i++ {
			in <- x
		}
	}()
	lat := make([]float64, 0, images)
	start := time.Now()
	for r := range p.Run(context.Background(), in) {
		if r.Err != nil {
			return StreamBenchRun{}, r.Err
		}
		lat = append(lat, ms(r.Stats.Latency))
	}
	return summarize(images, lat, time.Since(start)), nil
}

// livePipelineComparison runs the sequential-vs-pipelined passes on fresh
// runtimes whose workers sleep delay per tile, standing in for Conv-node
// compute that the Central can overlap with its own back layers.
func livePipelineComparison(opt models.Options, nodes, images, warmup, depth int, delay time.Duration) (seq, pipe StreamBenchRun, err error) {
	run := func(measure func(*core.Central) (StreamBenchRun, error)) (StreamBenchRun, error) {
		c, _, stop, err := streamRuntime(opt, nodes, func(w *core.Worker) { w.Delay = delay })
		if err != nil {
			return StreamBenchRun{}, err
		}
		defer stop()
		return measure(c)
	}
	seq, err = run(func(c *core.Central) (StreamBenchRun, error) {
		return measureStream(c, images, warmup, nil)
	})
	if err != nil {
		return seq, pipe, err
	}
	pipe, err = run(func(c *core.Central) (StreamBenchRun, error) {
		return measurePipelined(c, images, warmup, depth)
	})
	return seq, pipe, err
}

// StreamBench runs the telemetry-overhead experiment. The trace, when
// non-nil, is attached to the telemetry-enabled pass so the run doubles
// as a timeline capture.
func StreamBench(images int, trace *telemetry.Trace) (*StreamBenchReport, error) {
	const nodes = 4
	warmup := images / 5
	if warmup < 2 {
		warmup = 2
	}
	opt := models.Options{
		Grid:   fdsp.Grid{Rows: 4, Cols: 4},
		ClipLo: 0.05, ClipHi: 2.0, QuantBits: 4, // exercise the full compress path
	}

	rep := &StreamBenchReport{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Host:      telemetry.HostInfo(),
		Model:     models.VGGSim().Name,
		Grid:      "4x4",
		Nodes:     nodes,
	}

	// Pass 1: telemetry fully disabled.
	c, _, stop, err := streamRuntime(opt, nodes, nil)
	if err != nil {
		return nil, err
	}
	rep.Disabled, err = measureStream(c, images, warmup, nil)
	stop()
	if err != nil {
		return nil, err
	}

	// Pass 2: everything on — metrics registry shared by Central and
	// workers, wire metering, compression instruments, tracer.
	reg := telemetry.NewRegistry()
	met := core.NewMetrics(reg)
	compress.Instrument(reg)
	defer compress.Instrument(nil)
	c, _, stop, err = streamRuntime(opt, nodes, func(w *core.Worker) { w.Metrics = met })
	if err != nil {
		return nil, err
	}
	c.SetMetrics(met) // also attaches the windowed instruments and health tracker
	c.SetTrace(trace)
	// The SLO engine and flight recorder run live during the enabled pass
	// so the <2% overhead gate covers the whole observability layer, not
	// just the counters: window rotation, burn evaluation, health EWMAs.
	sloCtx, sloStop := context.WithCancel(context.Background())
	engine := core.NewSLOEngine(met, core.SLOConfig{})
	c.SetFlightRecorder(telemetry.NewFlightRecorder(0))
	c.WireSLO(engine)
	go engine.Run(sloCtx, 0)
	var phaseSum [core.NumPhases]time.Duration
	var totalSum, phaseAll time.Duration
	tiles := 0
	rep.Enabled, err = measureStream(c, images, warmup, func(st core.InferStats) {
		if st.Breakdown == nil {
			return
		}
		for i := range st.Breakdown.Tiles {
			t := &st.Breakdown.Tiles[i]
			for p := range t.Phase {
				phaseSum[p] += t.Phase[p]
			}
			phaseAll += t.PhaseSum()
			totalSum += t.Total
			tiles++
		}
	})
	sloStop()
	stop()
	if err != nil {
		return nil, err
	}
	if tiles > 0 {
		rep.PhaseMeansMs = make(map[string]float64, core.NumPhases)
		for p := 0; p < core.NumPhases; p++ {
			rep.PhaseMeansMs[core.PhaseNames[p]] = ms(phaseSum[p] / time.Duration(tiles))
		}
		rep.PhaseTiles = tiles
		if totalSum > 0 {
			gap := phaseAll - totalSum
			if gap < 0 {
				gap = -gap
			}
			rep.PhaseSumVsTotalPct = float64(gap) / float64(totalSum) * 100
		}
	}

	rep.OverheadPct = (rep.Disabled.ThroughputIPS - rep.Enabled.ThroughputIPS) /
		rep.Disabled.ThroughputIPS * 100

	// Passes 3+4: live sequential vs pipelined. One tile per node (2x2
	// grid on 4 nodes) with a fixed per-tile service time is the cleanest
	// live rendering of the paper's Fig. 9 stage overlap: while a Conv
	// node's simulated device holds image i's tile, the Central runs
	// image i-1's back layers and encodes image i+1's tiles — work the
	// sequential loop can only do while the nodes sit idle. Larger grids
	// bury the overlappable Central stage under per-tile transport
	// overhead that lives inside the Conv chain either way.
	const (
		pipelineDepth = 3
		tileDelay     = 4 * time.Millisecond
	)
	liveOpt := models.Options{Grid: fdsp.Grid{Rows: 2, Cols: 2}}
	rep.LiveGrid = "2x2"
	rep.PipelineDepth = pipelineDepth
	rep.TileDelayMs = ms(tileDelay)
	rep.LiveSequential, rep.LivePipelined, err =
		livePipelineComparison(liveOpt, nodes, images, warmup, pipelineDepth, tileDelay)
	if err != nil {
		return nil, err
	}
	rep.PipelineGain = rep.LivePipelined.ThroughputIPS / rep.LiveSequential.ThroughputIPS
	return rep, nil
}

// WriteJSON writes the report, indented, to path.
func (r *StreamBenchReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteText renders the overhead comparison.
func (r *StreamBenchReport) WriteText(w io.Writer) {
	fprintf(w, "Live-stream telemetry overhead (%s %s, %d nodes, %s/%s, %d CPUs)\n",
		r.Model, r.Grid, r.Nodes, r.GOOS, r.GOARCH, r.NumCPU)
	fprintf(w, "  %-20s %10s %12s %12s\n", "telemetry", "imgs/sec", "mean(ms)", "p95(ms)")
	for _, row := range []struct {
		name string
		run  StreamBenchRun
	}{{"disabled", r.Disabled}, {"enabled", r.Enabled}} {
		fprintf(w, "  %-20s %10.2f %12.2f %12.2f\n",
			row.name, row.run.ThroughputIPS, row.run.MeanLatencyMs, row.run.P95LatencyMs)
	}
	fprintf(w, "  overhead: %.2f%% of throughput\n", r.OverheadPct)
	if r.PhaseTiles > 0 {
		fprintf(w, "  phase means over %d tiles (ms):", r.PhaseTiles)
		for p := 0; p < core.NumPhases; p++ {
			name := core.PhaseNames[p]
			fprintf(w, " %s=%.3f", name, r.PhaseMeansMs[name])
		}
		fprintf(w, "  (phase-sum vs total gap %.3f%%)\n", r.PhaseSumVsTotalPct)
	}
	fprintf(w, "Live streaming (%s grid): sequential Infer loop vs Pipeline(depth=%d), %.0fms/tile Conv service time\n",
		r.LiveGrid, r.PipelineDepth, r.TileDelayMs)
	fprintf(w, "  %-20s %10s %12s %12s\n", "mode", "imgs/sec", "mean(ms)", "p95(ms)")
	for _, row := range []struct {
		name string
		run  StreamBenchRun
	}{{"sequential", r.LiveSequential}, {"pipelined", r.LivePipelined}} {
		fprintf(w, "  %-20s %10.2f %12.2f %12.2f\n",
			row.name, row.run.ThroughputIPS, row.run.MeanLatencyMs, row.run.P95LatencyMs)
	}
	fprintf(w, "  pipelining gain: %.2fx throughput\n", r.PipelineGain)
}

package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestClusterBenchSmall runs the full control-plane sharding benchmark
// at a reduced image count — live TCP pool, both closed-loop passes and
// the imbalance pass — and checks the report's shape plus loose
// versions of the acceptance gates. The strict gates (>= 1.7x speedup,
// <= 25% p99 spread) are enforced on the committed BENCH_cluster.json,
// which is produced by a full-length non-race run; here the thresholds
// are slack so the race detector's ~5x slowdown cannot flake CI.
func TestClusterBenchSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live benchmark")
	}
	rep, err := ClusterBench(24)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Single.Replicas != 1 || rep.Dual.Replicas != 2 {
		t.Fatalf("replica counts = %d/%d, want 1/2", rep.Single.Replicas, rep.Dual.Replicas)
	}
	if rep.Single.ThroughputIPS <= 0 || rep.Dual.ThroughputIPS <= 0 {
		t.Fatalf("throughput not measured: single %v dual %v",
			rep.Single.ThroughputIPS, rep.Dual.ThroughputIPS)
	}
	// Loose scaling floor: a second replica over the shared pool must
	// help materially even under the race detector.
	if rep.SpeedupX < 1.2 {
		t.Fatalf("dual-replica speedup %.2fx, want >= 1.2x", rep.SpeedupX)
	}
	if len(rep.Imbalance.PerOriginP99Ms) != 2 {
		t.Fatalf("imbalance p99s = %v, want one per origin", rep.Imbalance.PerOriginP99Ms)
	}
	for o, p99 := range rep.Imbalance.PerOriginP99Ms {
		if p99 <= 0 {
			t.Fatalf("origin %d p99 = %v, want > 0", o, p99)
		}
	}
	// Loose spread ceiling: without stealing, the overloaded origin's
	// queue grows without bound and the spread lands in the hundreds of
	// percent — any bounded figure means the steal path engaged.
	if rep.Imbalance.P99SpreadPct < 0 || rep.Imbalance.P99SpreadPct > 150 {
		t.Fatalf("p99 spread %.1f%%, want within [0, 150]", rep.Imbalance.P99SpreadPct)
	}

	path := filepath.Join(t.TempDir(), "BENCH_cluster.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back ClusterBenchReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.SpeedupX != rep.SpeedupX || back.Nodes != rep.Nodes {
		t.Fatalf("round-trip mismatch: %+v vs %+v", back, rep)
	}
}

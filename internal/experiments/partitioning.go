package experiments

import (
	"fmt"
	"io"

	"adcnn/internal/compress"
	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/tensor"
	"adcnn/internal/trainer"
)

// PartitioningRow is one strategy of the Section 3 comparison.
type PartitioningRow struct {
	Strategy string
	TrafficB int64 // bytes moved between devices for one image
	Exact    bool  // reproduces the monolithic computation bit-for-bit
	Parallel bool  // reduces per-image latency (vs only throughput)
	Comment  string
}

// PartitioningResult compares the four partitioning strategies the paper
// walks through in Section 3 — batch, channel, naive spatial (halo
// exchange), FDSP — measured on a real trained sim-scale model with real
// tensors (channel traffic is analytic; it needs no execution to count).
type PartitioningResult struct {
	Model string
	Grid  fdsp.Grid
	Rows  []PartitioningRow
}

// ComparePartitioning trains a small model and measures each strategy's
// per-image inter-device traffic for the separable prefix.
func ComparePartitioning(setup AccuracySetup) (*PartitioningResult, error) {
	cfg := setup.Models[0]
	grid := setup.Grids[0]
	data, err := synthSet(cfg, setup.Samples, setup.Seed)
	if err != nil {
		return nil, err
	}
	train, _ := data.Split(setup.Samples * 3 / 4)
	m, err := models.Build(cfg, models.Options{}, setup.Seed)
	if err != nil {
		return nil, err
	}
	tr := trainer.New(trainer.Params{LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4, BatchSize: 16, Seed: setup.Seed})
	tr.Train(m, train, setup.OrigEpochs)

	x, _ := train.Batch(0, 1)
	res := &PartitioningResult{Model: cfg.Name, Grid: grid}

	// Batch partitioning: whole images to different devices — zero
	// inter-device traffic but no latency parallelism.
	res.Rows = append(res.Rows, PartitioningRow{
		Strategy: "batch", TrafficB: 0, Exact: true, Parallel: false,
		Comment: "throughput only; per-image latency unchanged",
	})

	// Channel partitioning: each block's ofmap crosses the medium K-1
	// times (partial-sum exchange).
	var chBytes int64
	for _, b := range cfg.Profile()[:cfg.Separable] {
		chBytes += b.OfmapBytes * int64(grid.Tiles()-1)
	}
	res.Rows = append(res.Rows, PartitioningRow{
		Strategy: "channel", TrafficB: chBytes, Exact: true, Parallel: true,
		Comment: "whole feature maps exchanged every layer",
	})

	// Naive spatial partitioning: measured halo-strip traffic.
	blocks, err := m.ExchangeBlocks()
	if err != nil {
		return nil, err
	}
	full := m.Front.Forward(x, false)
	got, st, err := fdsp.RunWithExchange(blocks, x, grid)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, PartitioningRow{
		Strategy: "spatial+halo", TrafficB: st.HaloBytes,
		Exact: got.Equal(full, 1e-4), Parallel: true,
		Comment: fmt.Sprintf("%d exchange rounds", st.Rounds),
	})

	// FDSP: zero cross-tile traffic during the separable blocks; only the
	// compressed boundary output travels at the end.
	lo, hi := trainer.SearchClipBounds(m, train, 8, 0.9)
	p := compress.NewPipeline(4, hi-lo)
	tiles := grid.Layout(x.Shape[2], x.Shape[3])
	var fdspBytes int64
	for _, tl := range tiles {
		y := m.Front.Forward(fdsp.ExtractTile(x, tl), false)
		y = clipTensor(y, lo, hi)
		fdspBytes += int64(p.EncodedSize(y))
	}
	res.Rows = append(res.Rows, PartitioningRow{
		Strategy: "FDSP (ADCNN)", TrafficB: fdspBytes, Exact: false, Parallel: true,
		Comment: "no cross-tile traffic; compressed boundary only (retraining restores accuracy)",
	})
	return res, nil
}

// clipTensor applies ReLU[lo,hi] out of place.
func clipTensor(t *tensor.Tensor, lo, hi float32) *tensor.Tensor {
	out := tensor.New(t.Shape...)
	for i, v := range t.Data {
		switch {
		case v > hi:
			out.Data[i] = hi - lo
		case v >= lo:
			out.Data[i] = v - lo
		}
	}
	return out
}

// WriteText prints the comparison.
func (r *PartitioningResult) WriteText(w io.Writer) {
	fprintf(w, "Section 3 partitioning strategies on %s (%s partition, one image)\n", r.Model, r.Grid.String())
	fprintf(w, "  %-14s %12s %7s %9s  %s\n", "strategy", "traffic(B)", "exact", "parallel", "notes")
	for _, row := range r.Rows {
		fprintf(w, "  %-14s %12d %7v %9v  %s\n",
			row.Strategy, row.TrafficB, row.Exact, row.Parallel, row.Comment)
	}
}

package telemetry

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// Trace accumulates timeline events in the Chrome trace-event format
// (the catapult JSON schema understood by Perfetto, chrome://tracing and
// speedscope). Spans are complete events ("ph":"X") on a pid/tid grid:
// the runtime maps the Central node to tid 0 and Conv node k to tid k+1.
//
// Two time bases coexist: virtual-time callers (the simulator) pass
// explicit offsets to Span/Instant, wall-clock callers (the live
// runtime) use Begin/End or Offset, which measure against the trace
// epoch. All methods are safe on a nil *Trace so instrumentation sites
// need no guards, and safe for concurrent use.
type Trace struct {
	mu    sync.Mutex
	epoch time.Time
	evs   []TraceEvent
}

// TraceEvent is one Chrome trace-event record. Field tags follow the
// trace-event schema: ts/dur are microseconds.
type TraceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// traceFile is the top-level JSON object.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// NewTrace creates a tracer whose wall-clock epoch is now.
func NewTrace() *Trace {
	return &Trace{epoch: time.Now()}
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// Offset converts a wall-clock instant to a trace-relative offset.
func (t *Trace) Offset(at time.Time) time.Duration {
	if t == nil {
		return 0
	}
	return at.Sub(t.epoch)
}

func (t *Trace) add(ev TraceEvent) {
	t.mu.Lock()
	t.evs = append(t.evs, ev)
	t.mu.Unlock()
}

// Span records a complete span at an explicit trace-relative offset.
func (t *Trace) Span(name, cat string, tid int, start, dur time.Duration, args map[string]any) {
	if t == nil {
		return
	}
	t.add(TraceEvent{Name: name, Cat: cat, Ph: "X", TS: micros(start), Dur: micros(dur), PID: 1, TID: tid, Args: args})
}

// Instant records a point event at an explicit trace-relative offset.
func (t *Trace) Instant(name, cat string, tid int, at time.Duration, args map[string]any) {
	if t == nil {
		return
	}
	t.add(TraceEvent{Name: name, Cat: cat, Ph: "i", TS: micros(at), PID: 1, TID: tid, Scope: "t", Args: args})
}

// SetThreadName labels a tid row in the trace viewer.
func (t *Trace) SetThreadName(tid int, name string) {
	if t == nil {
		return
	}
	t.add(TraceEvent{Name: "thread_name", Ph: "M", PID: 1, TID: tid,
		Args: map[string]any{"name": name}})
}

// Span1 is an in-progress wall-clock span started by Begin.
type Span1 struct {
	t     *Trace
	name  string
	cat   string
	tid   int
	start time.Time
}

// Begin opens a wall-clock span; close it with End.
func (t *Trace) Begin(name, cat string, tid int) Span1 {
	return Span1{t: t, name: name, cat: cat, tid: tid, start: time.Now()}
}

// End records the span opened by Begin. args may be nil.
func (s Span1) End(args map[string]any) {
	if s.t == nil {
		return
	}
	s.t.Span(s.name, s.cat, s.tid, s.start.Sub(s.t.epoch), time.Since(s.start), args)
}

// Events returns a copy of the recorded events (for tests).
func (t *Trace) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.evs...)
}

// Len reports how many events have been recorded.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.evs)
}

// WriteJSON writes the full trace file.
func (t *Trace) WriteJSON(w io.Writer) error {
	if t == nil {
		return nil
	}
	f := traceFile{TraceEvents: t.Events(), DisplayTimeUnit: "ms"}
	if f.TraceEvents == nil {
		f.TraceEvents = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// WriteFile writes the trace to path.
func (t *Trace) WriteFile(path string) error {
	if t == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadTraceFile parses a trace file back into events — the test-side
// half of the export round trip.
func ReadTraceFile(r io.Reader) ([]TraceEvent, error) {
	var f traceFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, err
	}
	return f.TraceEvents, nil
}

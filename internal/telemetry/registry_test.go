package telemetry

import (
	"math"
	"sync"
	"testing"
)

// TestConcurrentInstruments hammers one counter, gauge and histogram
// from many goroutines; run under -race this is the registry's
// thread-safety proof, and the totals check catches lost updates.
func TestConcurrentInstruments(t *testing.T) {
	reg := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Re-resolve through the registry on every iteration to also
			// race the get-or-create path.
			for j := 0; j < perWorker; j++ {
				reg.Counter("c_total", "").Inc()
				reg.Gauge("g", "").Add(1)
				reg.CounterVec("cv_total", "", "node").With("7").Add(2)
				reg.Histogram("h_seconds", "", nil).Observe(float64(j%10) / 1000)
			}
		}(i)
	}
	wg.Wait()

	const total = workers * perWorker
	if v, _ := reg.Value("c_total"); v != total {
		t.Fatalf("counter = %v, want %d", v, total)
	}
	if v, _ := reg.Value("g"); v != total {
		t.Fatalf("gauge = %v, want %d", v, total)
	}
	if v, _ := reg.Value("cv_total", "7"); v != 2*total {
		t.Fatalf("labelled counter = %v, want %d", v, 2*total)
	}
	h := reg.Histogram("h_seconds", "", nil).Snapshot()
	if h.Count != total {
		t.Fatalf("histogram count = %d, want %d", h.Count, total)
	}
}

func TestHistogramBucketMath(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 10} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// le semantics: bucket i counts v <= upper[i] (non-cumulative here).
	want := []uint64{2, 2, 1, 1} // {0.5,1}, {1.5,2}, {3}, {10}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, c, want[i], s.Counts)
		}
	}
	if s.Sum != 18 || s.Count != 6 || s.Min != 0.5 || s.Max != 10 {
		t.Fatalf("sum/count/min/max = %v/%v/%v/%v", s.Sum, s.Count, s.Min, s.Max)
	}
}

// TestHistogramQuantiles checks the interpolated quantile estimates
// against a known uniform distribution: 1..1000 into decade buckets.
func TestHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("u", "", LinearBuckets(100, 100, 10))
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.50, 500, 2},
		{0.95, 950, 2},
		{0.99, 990, 2},
		{1.00, 1000, 0},
	} {
		got := s.Quantile(tc.q)
		if math.Abs(got-tc.want) > tc.tol {
			t.Fatalf("q%.2f = %v, want %v ± %v", tc.q, got, tc.want, tc.tol)
		}
	}
	var empty HistogramSnapshot
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Fatal("empty histogram quantile must be NaN")
	}
}

func TestSnapshotShape(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("b_total", "", "node").With("1").Add(3)
	reg.CounterVec("b_total", "", "node").With("0").Add(4)
	reg.Gauge("a", "").Set(-2)
	s := reg.Snapshot()
	if len(s.Families) != 2 || s.Families[0].Name != "a" || s.Families[1].Name != "b_total" {
		t.Fatalf("families misordered: %+v", s.Families)
	}
	b := s.Families[1]
	if b.Kind != "counter" || len(b.Metrics) != 2 ||
		b.Metrics[0].LabelValues[0] != "0" || b.Metrics[1].LabelValues[0] != "1" {
		t.Fatalf("label tuples misordered: %+v", b.Metrics)
	}
	if b.Metrics[0].Value != 4 || b.Metrics[1].Value != 3 {
		t.Fatalf("values: %+v", b.Metrics)
	}
}

func TestSchemaViolationsPanic(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "")
	for name, f := range map[string]func(){
		"kind change":    func() { reg.Gauge("x_total", "") },
		"label change":   func() { reg.CounterVec("x_total", "", "node") },
		"bad name":       func() { reg.Counter("5bad", "") },
		"bad label":      func() { reg.CounterVec("ok", "", "bad-label") },
		"missing values": func() { reg.CounterVec("y_total", "", "node").With() },
		"counter dec":    func() { reg.Counter("z_total", "").Add(-1) },
		"bad buckets":    func() { reg.Histogram("h", "", []float64{2, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

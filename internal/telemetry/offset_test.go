package telemetry

import (
	"math/rand"
	"testing"
)

// exchange simulates one request/response pair between a local clock and
// a remote clock running at local+skew, with the given one-way delays
// (all in nanoseconds, local clock), and feeds it to the estimator.
func exchange(e *OffsetEstimator, localNow, skew, up, proc, down int64) (offset int64, nextLocal int64) {
	t0 := localNow
	t1 := t0 + up + skew // remote clock reading at arrival
	t2 := t1 + proc
	t3 := t0 + up + proc + down
	off, _ := e.Update(t0, t1, t2, t3)
	return off, t3
}

func TestOffsetConvergesUnderConstantSkew(t *testing.T) {
	// Remote clock = local + skew. The additive convention is
	// remote + Offset() = local, so the estimate must converge to -skew.
	const skew = 3_000_000 // 3ms
	e := NewOffsetEstimator(0)
	now := int64(1_000)
	for i := 0; i < 200; i++ {
		_, now = exchange(e, now, skew, 50_000, 400_000, 50_000)
		now += 1_000_000
	}
	got := e.Offset()
	if diff := got + skew; diff < -5_000 || diff > 5_000 {
		t.Fatalf("offset %d, want ~%d (symmetric paths: exact up to rounding)", got, -skew)
	}
	if e.Samples() != 200 {
		t.Fatalf("samples %d, want 200", e.Samples())
	}
	if e.MinRTT() != 100_000 {
		t.Fatalf("min RTT %d, want 100000 (excludes remote processing)", e.MinRTT())
	}
}

func TestOffsetTracksDrift(t *testing.T) {
	// The remote clock drifts 50ppm fast: after each 1ms step the skew
	// grows by 50ns. The EWMA must follow within a few RTTs' worth.
	e := NewOffsetEstimator(0.3)
	now := int64(1_000)
	skew := int64(1_000_000)
	for i := 0; i < 2000; i++ {
		_, now = exchange(e, now, skew, 30_000, 100_000, 30_000)
		now += 1_000_000
		skew += 50
	}
	got := e.Offset()
	// Lag of an EWMA with weight a on a ramp of slope s per step is
	// s(1-a)/a — 50·0.7/0.3 ≈ 117ns here; allow generous slack.
	if diff := got + skew; diff < -20_000 || diff > 20_000 {
		t.Fatalf("offset %d lags true -%d by %d, want within 20µs", got, skew, got+skew)
	}
}

func TestOffsetBoundedUnderAsymmetricRTT(t *testing.T) {
	// NTP-style midpoint estimation cannot see path asymmetry: with
	// uplink u and downlink d the bias is exactly (d-u)/2. Verify the
	// error never exceeds RTT/2 — the theoretical bound.
	const skew = 2_000_000
	const up, down = 1_600_000, 400_000 // heavily asymmetric
	e := NewOffsetEstimator(0)
	now := int64(1_000)
	for i := 0; i < 100; i++ {
		_, now = exchange(e, now, skew, up, 200_000, down)
		now += 500_000
	}
	err := e.Offset() + skew // residual bias
	if err < 0 {
		err = -err
	}
	if bound := int64(up+down) / 2; err > bound {
		t.Fatalf("offset error %d exceeds RTT/2 bound %d", err, bound)
	}
	// And the bias should be close to (down-up)/2 = -600µs in the stored
	// (negated) convention: Offset = -skew - (up-down)/2.
	want := -int64(skew) - (up-down)/2
	if diff := e.Offset() - want; diff < -10_000 || diff > 10_000 {
		t.Fatalf("offset %d, want ~%d for %dns/%dns asymmetry", e.Offset(), want, up, down)
	}
}

func TestOffsetDeratesNoisySamples(t *testing.T) {
	// Samples taken over a congested (high-RTT) exchange must move the
	// estimate less than clean ones: converge on clean exchanges, then
	// hit the estimator with wildly biased high-RTT samples and check
	// the estimate barely moves.
	const skew = 1_000_000
	e := NewOffsetEstimator(0.2)
	now := int64(1_000)
	for i := 0; i < 100; i++ {
		_, now = exchange(e, now, skew, 20_000, 50_000, 20_000)
		now += 200_000
	}
	before := e.Offset()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		// 100× the RTT, all of it on the uplink: a grossly biased sample.
		jitter := int64(2_000_000 + rng.Intn(2_000_000))
		_, now = exchange(e, now, skew, jitter, 50_000, 20_000)
		now += 200_000
	}
	after := e.Offset()
	drift := after - before
	if drift < 0 {
		drift = -drift
	}
	// An un-derated EWMA (weight 0.2) would absorb ~98% of a ~1-2ms bias
	// over 20 samples; the RTT derating must keep the drift far smaller.
	if drift > 300_000 {
		t.Fatalf("noisy samples moved the estimate by %dns — RTT derating not working", drift)
	}
}

func TestOffsetRejectsNegativeRTT(t *testing.T) {
	// RTT = (t3−t0)−(t2−t1) = −20 here: not a causally valid exchange.
	e := NewOffsetEstimator(0)
	if _, rtt := e.Update(100, 50, 60, 90); rtt >= 0 {
		t.Fatalf("expected negative RTT back, got %d", rtt)
	}
	if e.Samples() != 0 {
		t.Fatalf("rejected sample must not count, got %d", e.Samples())
	}
}

func TestOffsetNilSafe(t *testing.T) {
	var e *OffsetEstimator
	e.Update(0, 1, 2, 3)
	if e.Offset() != 0 || e.RTT() != 0 || e.MinRTT() != 0 || e.Samples() != 0 {
		t.Fatal("nil estimator accessors must return zero")
	}
}

package telemetry

import (
	"runtime"
	"runtime/debug"
)

// Host describes the machine and build a benchmark report came from, so
// BENCH_*.json files are comparable across machines.
type Host struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	GitCommit string `json:"git_commit,omitempty"` // empty when built without VCS stamping
}

// HostInfo collects the current host/build metadata. The git commit
// comes from the binary's embedded build info ("+dirty" marks a
// modified tree) and is empty for plain `go test` builds.
func HostInfo() Host {
	h := Host{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev string
		var dirty bool
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			if dirty {
				rev += "+dirty"
			}
			h.GitCommit = rev
		}
	}
	return h
}

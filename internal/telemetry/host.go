package telemetry

import (
	"runtime"
	"runtime/debug"

	"adcnn/internal/cpufeat"
)

// Host describes the machine and build a benchmark report came from, so
// BENCH_*.json files are comparable across machines.
type Host struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	GitCommit string `json:"git_commit,omitempty"` // empty when built without VCS stamping
	// CPUFeatures lists the detected SIMD features ("sse2,avx2,..."),
	// empty off amd64 or under the noasm tag; GOAMD64 is the build's
	// microarchitecture level when the build info records one. Together
	// they attribute a benchmark run to the kernel tier it exercised.
	CPUFeatures string `json:"cpu_features,omitempty"`
	GOAMD64     string `json:"goamd64,omitempty"`
}

// HostInfo collects the current host/build metadata. The git commit
// comes from the binary's embedded build info ("+dirty" marks a
// modified tree) and is empty for plain `go test` builds.
func HostInfo() Host {
	h := Host{
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		CPUFeatures: cpufeat.Detect().String(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev string
		var dirty bool
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			case "GOAMD64":
				h.GOAMD64 = s.Value
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			if dirty {
				rev += "+dirty"
			}
			h.GitCommit = rev
		}
	}
	return h
}

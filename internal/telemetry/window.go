package telemetry

import (
	"math"
	"sync"
	"time"
)

// Sliding-window instruments: a ring of bucketed sub-windows that gives
// rolling quantiles and rates over "the last N seconds" instead of
// since-process-start. The cumulative Histogram answers "what has this
// process ever seen"; these answer "is p99 breaching *right now*" —
// the question an SLO engine, a health scorer, or an ops console asks.
//
// Both instruments share the same mechanics: time is divided into
// fixed-width sub-windows (slots), observations land in the current
// slot, and a query merges the most recent ceil(window/width) slots —
// including the partially-filled current one, so a "last 1s" view spans
// at most one extra slot width of data. Rotation zeroes expired slots
// lazily on the next observation or query; the hot path is one short
// mutex hold and no allocation, like the cumulative instruments.

// windowRing tracks which slot is current and rotates on the clock.
type windowRing struct {
	width int64 // slot width, ns
	slots int
	start int64 // start of the current slot's period, mono ns
	cur   int
	nowNs func() int64 // injectable for tests; monotonic
}

// monoClock returns a monotonic nanosecond clock anchored at init time.
func monoClock() func() int64 {
	epoch := time.Now()
	return func() int64 { return int64(time.Since(epoch)) }
}

// advance rotates to the slot containing now, calling zero(i) for every
// slot whose previous contents expired. Caller holds the instrument's
// mutex.
func (r *windowRing) advance(now int64, zero func(int)) {
	if now < r.start {
		return // clock went backwards (test injection); keep current slot
	}
	steps := (now - r.start) / r.width
	if steps == 0 {
		return
	}
	if steps >= int64(r.slots) {
		for i := 0; i < r.slots; i++ {
			zero(i)
		}
		r.cur = 0
		r.start = now - (now-r.start)%r.width
		return
	}
	for i := int64(0); i < steps; i++ {
		r.cur = (r.cur + 1) % r.slots
		zero(r.cur)
	}
	r.start += steps * r.width
}

// recent returns the number of slots a window of duration d covers,
// clamped to the ring.
func (r *windowRing) recent(d time.Duration) int {
	n := int((int64(d) + r.width - 1) / r.width)
	if n < 1 {
		n = 1
	}
	if n > r.slots {
		n = r.slots
	}
	return n
}

// ------------------------------------------------------- windowed histogram

// WindowedHistogram is a sliding-window histogram: a ring of bucketed
// sub-windows over a fixed span. Observe is race-clean and
// allocation-free; Snapshot(window) merges the most recent sub-windows
// into an ordinary HistogramSnapshot, so Quantile/FractionAbove work
// unchanged on the rolling view. Queries for any window up to the span
// come from the same instrument, which is what lets one histogram feed
// both the fast and the slow burn-rate window of an SLO.
type WindowedHistogram struct {
	mu    sync.Mutex
	upper []float64
	ring  windowRing

	counts [][]uint64 // [slot][bucket]; last bucket is +Inf overflow
	sums   []float64
	ns     []uint64
	mins   []float64
	maxs   []float64
}

// NewWindowedHistogram creates a histogram spanning span, divided into
// slots sub-windows. nil buckets use DefBuckets.
func NewWindowedHistogram(span time.Duration, slots int, buckets []float64) *WindowedHistogram {
	if span <= 0 || slots < 1 {
		panic("telemetry: bad window spec")
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	w := &WindowedHistogram{
		upper:  append([]float64(nil), buckets...),
		ring:   windowRing{width: int64(span) / int64(slots), slots: slots, nowNs: monoClock()},
		counts: make([][]uint64, slots),
		sums:   make([]float64, slots),
		ns:     make([]uint64, slots),
		mins:   make([]float64, slots),
		maxs:   make([]float64, slots),
	}
	if w.ring.width <= 0 {
		panic("telemetry: window span shorter than slot count")
	}
	for i := range w.counts {
		w.counts[i] = make([]uint64, len(buckets)+1)
	}
	return w
}

// Span returns the total window the ring covers.
func (w *WindowedHistogram) Span() time.Duration {
	return time.Duration(w.ring.width * int64(w.ring.slots))
}

func (w *WindowedHistogram) zeroSlot(i int) {
	for j := range w.counts[i] {
		w.counts[i][j] = 0
	}
	w.sums[i] = 0
	w.ns[i] = 0
	w.mins[i] = 0
	w.maxs[i] = 0
}

// Observe records one value into the current sub-window. Non-finite
// values (NaN, ±Inf) are dropped — a single NaN would otherwise poison
// the sum and every quantile interpolated from it.
func (w *WindowedHistogram) Observe(v float64) {
	if w == nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	i := 0
	for i < len(w.upper) && w.upper[i] < v {
		i++
	}
	w.mu.Lock()
	w.ring.advance(w.ring.nowNs(), w.zeroSlot)
	c := w.ring.cur
	w.counts[c][i]++
	w.sums[c] += v
	if w.ns[c] == 0 || v < w.mins[c] {
		w.mins[c] = v
	}
	if w.ns[c] == 0 || v > w.maxs[c] {
		w.maxs[c] = v
	}
	w.ns[c]++
	w.mu.Unlock()
}

// ObserveDuration records a duration in seconds given nanoseconds.
func (w *WindowedHistogram) ObserveDuration(ns int64) {
	if w == nil {
		return
	}
	w.Observe(float64(ns) / 1e9)
}

// Snapshot merges the sub-windows covering the last window duration
// (clamped to the span) into a HistogramSnapshot, so the cumulative
// snapshot's Quantile and FractionAbove apply to the rolling view.
func (w *WindowedHistogram) Snapshot(window time.Duration) HistogramSnapshot {
	if w == nil {
		return HistogramSnapshot{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.ring.advance(w.ring.nowNs(), w.zeroSlot)
	out := HistogramSnapshot{
		Upper:  append([]float64(nil), w.upper...),
		Counts: make([]uint64, len(w.upper)+1),
	}
	n := w.ring.recent(window)
	for k := 0; k < n; k++ {
		i := (w.ring.cur - k + w.ring.slots) % w.ring.slots
		if w.ns[i] == 0 {
			continue
		}
		for j, c := range w.counts[i] {
			out.Counts[j] += c
		}
		out.Sum += w.sums[i]
		if out.Count == 0 || w.mins[i] < out.Min {
			out.Min = w.mins[i]
		}
		if out.Count == 0 || w.maxs[i] > out.Max {
			out.Max = w.maxs[i]
		}
		out.Count += w.ns[i]
	}
	return out
}

// Quantile estimates the q-quantile over the last window duration.
// Returns NaN when the window holds no observations.
func (w *WindowedHistogram) Quantile(window time.Duration, q float64) float64 {
	return w.Snapshot(window).Quantile(q)
}

// --------------------------------------------------------- windowed counter

// WindowedCounter is a sliding-window sum: Add lands in the current
// sub-window, Total sums the most recent sub-windows. One counter
// serves every window up to the span (fast and slow burn windows, the
// ops console's rate column) without double bookkeeping.
type WindowedCounter struct {
	mu   sync.Mutex
	ring windowRing
	vals []float64
}

// NewWindowedCounter creates a counter spanning span, divided into
// slots sub-windows.
func NewWindowedCounter(span time.Duration, slots int) *WindowedCounter {
	if span <= 0 || slots < 1 {
		panic("telemetry: bad window spec")
	}
	c := &WindowedCounter{
		ring: windowRing{width: int64(span) / int64(slots), slots: slots, nowNs: monoClock()},
		vals: make([]float64, slots),
	}
	if c.ring.width <= 0 {
		panic("telemetry: window span shorter than slot count")
	}
	return c
}

// Span returns the total window the ring covers.
func (c *WindowedCounter) Span() time.Duration {
	return time.Duration(c.ring.width * int64(c.ring.slots))
}

func (c *WindowedCounter) zeroSlot(i int) { c.vals[i] = 0 }

// Add folds v into the current sub-window. Non-finite values are
// dropped, mirroring the histogram guard.
func (c *WindowedCounter) Add(v float64) {
	if c == nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	c.mu.Lock()
	c.ring.advance(c.ring.nowNs(), c.zeroSlot)
	c.vals[c.ring.cur] += v
	c.mu.Unlock()
}

// Inc adds one.
func (c *WindowedCounter) Inc() { c.Add(1) }

// Total sums the last window duration (clamped to the span).
func (c *WindowedCounter) Total(window time.Duration) float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ring.advance(c.ring.nowNs(), c.zeroSlot)
	var sum float64
	n := c.ring.recent(window)
	for k := 0; k < n; k++ {
		sum += c.vals[(c.ring.cur-k+c.ring.slots)%c.ring.slots]
	}
	return sum
}

// Rate returns the per-second rate over the last window duration.
func (c *WindowedCounter) Rate(window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return c.Total(window) / window.Seconds()
}

package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

// fakeClock drives a windowed instrument's ring deterministically.
type fakeClock struct {
	mu sync.Mutex
	ns int64
}

func (c *fakeClock) now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ns
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.ns += int64(d)
	c.mu.Unlock()
}

func newTestWindowHist(span time.Duration, slots int, buckets []float64) (*WindowedHistogram, *fakeClock) {
	w := NewWindowedHistogram(span, slots, buckets)
	clk := &fakeClock{}
	w.ring.nowNs = clk.now
	return w, clk
}

func newTestWindowCounter(span time.Duration, slots int) (*WindowedCounter, *fakeClock) {
	c := NewWindowedCounter(span, slots)
	clk := &fakeClock{}
	c.ring.nowNs = clk.now
	return c, clk
}

func TestWindowedHistogramRollingQuantile(t *testing.T) {
	// 10 slots of 1s each. Fill 5s with fast observations, then 5s with
	// slow ones; the full-span p50 sits between, the last-2s view sees
	// only the slow regime, and after the span rolls past the fast data
	// it is forgotten entirely.
	w, clk := newTestWindowHist(10*time.Second, 10, []float64{0.001, 0.01, 0.1, 1})
	for s := 0; s < 10; s++ {
		if s > 0 {
			clk.advance(time.Second)
		}
		v := 0.005 // 0.01 bucket
		if s >= 5 {
			v = 0.5 // 1 bucket
		}
		for i := 0; i < 100; i++ {
			w.Observe(v)
		}
	}

	full := w.Snapshot(10 * time.Second)
	if full.Count != 1000 {
		t.Fatalf("full window count %d, want 1000", full.Count)
	}
	if q := full.Quantile(0.99); q < 0.1 {
		t.Fatalf("full-span p99 %.4f should reflect the slow regime", q)
	}
	recent := w.Snapshot(2 * time.Second)
	if recent.Count != 200 {
		t.Fatalf("2s window count %d, want 200", recent.Count)
	}
	if q := recent.Quantile(0.5); q < 0.1 {
		t.Fatalf("recent p50 %.4f must see only slow observations", q)
	}

	// Roll the ring fully past the data: everything expires.
	clk.advance(11 * time.Second)
	if got := w.Snapshot(10 * time.Second); got.Count != 0 {
		t.Fatalf("expired window still holds %d observations", got.Count)
	}
	if q := w.Quantile(10*time.Second, 0.99); !math.IsNaN(q) {
		t.Fatalf("empty window quantile = %v, want NaN", q)
	}
}

func TestWindowedHistogramDropsNonFinite(t *testing.T) {
	w, _ := newTestWindowHist(time.Second, 4, nil)
	w.Observe(math.NaN())
	w.Observe(math.Inf(1))
	w.Observe(math.Inf(-1))
	w.Observe(0.25)
	snap := w.Snapshot(time.Second)
	if snap.Count != 1 || snap.Sum != 0.25 {
		t.Fatalf("non-finite observations leaked: count=%d sum=%v", snap.Count, snap.Sum)
	}
}

func TestCumulativeHistogramDropsNonFinite(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("nan_guard_seconds", "", nil)
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(0.5)
	snap := h.Snapshot()
	if snap.Count != 1 {
		t.Fatalf("count %d, want 1 (non-finite dropped)", snap.Count)
	}
	if math.IsNaN(snap.Sum) || math.IsInf(snap.Sum, 0) {
		t.Fatalf("sum poisoned: %v", snap.Sum)
	}
	if q := snap.Quantile(0.99); math.IsNaN(q) || math.IsInf(q, 0) {
		t.Fatalf("quantile poisoned: %v", q)
	}
}

func TestWindowedCounterRates(t *testing.T) {
	c, clk := newTestWindowCounter(10*time.Second, 10)
	for s := 0; s < 10; s++ {
		if s > 0 {
			clk.advance(time.Second)
		}
		c.Add(5)
	}
	if got := c.Total(10 * time.Second); got != 50 {
		t.Fatalf("full total %v, want 50", got)
	}
	if got := c.Total(3 * time.Second); got != 15 {
		t.Fatalf("3s total %v, want 15", got)
	}
	if got := c.Rate(5 * time.Second); math.Abs(got-5) > 1e-9 {
		t.Fatalf("rate %v, want 5/s", got)
	}
	clk.advance(20 * time.Second)
	if got := c.Total(10 * time.Second); got != 0 {
		t.Fatalf("expired total %v, want 0", got)
	}
	c.Add(math.NaN())
	c.Add(math.Inf(1))
	if got := c.Total(time.Second); got != 0 {
		t.Fatalf("non-finite adds leaked: %v", got)
	}
}

func TestWindowRingSkipsSlots(t *testing.T) {
	// A burst, then silence for several slot widths, then another burst:
	// the skipped slots must be zeroed, not inherited.
	c, clk := newTestWindowCounter(4*time.Second, 4)
	c.Add(8)
	clk.advance(3 * time.Second) // skips 2 slots
	c.Add(1)
	if got := c.Total(time.Second); got != 1 {
		t.Fatalf("current slot total %v, want 1", got)
	}
	if got := c.Total(4 * time.Second); got != 9 {
		t.Fatalf("full total %v, want 9 (old burst still in span)", got)
	}
	clk.advance(2 * time.Second) // first burst's slot now expired
	if got := c.Total(4 * time.Second); got != 1 {
		t.Fatalf("total after expiry %v, want 1", got)
	}
}

func TestFractionAbove(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("frac_seconds", "", []float64{0.01, 0.1, 1})
	for i := 0; i < 90; i++ {
		h.Observe(0.005)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	snap := h.Snapshot()
	if got := snap.FractionAbove(0.01); math.Abs(got-0.10) > 0.02 {
		t.Fatalf("FractionAbove(0.01) = %v, want ~0.10", got)
	}
	if got := snap.FractionAbove(1.0); got != 0 {
		t.Fatalf("FractionAbove(max) = %v, want 0", got)
	}
	if got := snap.FractionAbove(0.0001); got != 1 {
		t.Fatalf("FractionAbove(<min) = %v, want 1", got)
	}
	// Agreement with Quantile: the fraction above the p90 estimate ~ 10%.
	p90 := snap.Quantile(0.90)
	if got := snap.FractionAbove(p90); math.Abs(got-0.10) > 0.05 {
		t.Fatalf("FractionAbove(Quantile(0.9)) = %v, want ~0.1", got)
	}
	var empty HistogramSnapshot
	if got := empty.FractionAbove(1); got != 0 {
		t.Fatalf("empty FractionAbove = %v", got)
	}
}

// TestWindowedRace hammers both instruments from concurrent observers
// and readers; run with -race.
func TestWindowedRace(t *testing.T) {
	w := NewWindowedHistogram(100*time.Millisecond, 10, nil)
	c := NewWindowedCounter(100*time.Millisecond, 10)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				w.Observe(float64(seed*i%7) * 0.001)
				c.Add(1)
			}
		}(g + 1)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_ = w.Snapshot(50 * time.Millisecond)
				_ = w.Quantile(100*time.Millisecond, 0.99)
				_ = c.Rate(50 * time.Millisecond)
			}
		}()
	}
	wg.Wait()
}

func TestWindowedNilReceivers(t *testing.T) {
	var w *WindowedHistogram
	var c *WindowedCounter
	w.Observe(1)
	w.ObserveDuration(5)
	if got := w.Snapshot(time.Second); got.Count != 0 {
		t.Fatal("nil histogram snapshot must be empty")
	}
	c.Add(1)
	if got := c.Total(time.Second); got != 0 {
		t.Fatal("nil counter total must be 0")
	}
}

package telemetry

import (
	"math"
	"strings"
	"testing"
)

// TestParsePrometheusRoundTrip feeds WritePrometheus output straight
// back through the parser — the exact contract adcnn-top relies on.
func TestParsePrometheusRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("adcnn_images_total", "images").Add(42)
	reg.GaugeVec("adcnn_central_node_speed", "s_k", "node").With("0").Set(1.5)
	reg.GaugeVec("adcnn_central_node_speed", "s_k", "node").With("1").Set(2.25)
	h := reg.Histogram("adcnn_tile_seconds", "latency", []float64{0.01, 0.1, 1})
	for i := 0; i < 90; i++ {
		h.Observe(0.005)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	s, err := ParsePrometheus(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parse of own exposition failed: %v", err)
	}

	if v, ok := s.Value("adcnn_images_total"); !ok || v != 42 {
		t.Fatalf("counter = %v (ok=%v), want 42", v, ok)
	}
	if v, ok := s.Value("adcnn_central_node_speed", "node", "1"); !ok || v != 2.25 {
		t.Fatalf("labeled gauge = %v (ok=%v), want 2.25", v, ok)
	}
	if got := s.LabelValues("adcnn_central_node_speed", "node"); len(got) != 2 || got[0] != "0" || got[1] != "1" {
		t.Fatalf("LabelValues = %v, want [0 1]", got)
	}

	upper, cum := s.Buckets("adcnn_tile_seconds")
	if len(upper) != 3 || len(cum) != 4 {
		t.Fatalf("buckets: upper=%v cum=%v", upper, cum)
	}
	if cum[len(cum)-1] != 100 {
		t.Fatalf("+Inf cum = %d, want 100", cum[len(cum)-1])
	}
	p50 := QuantileFromBuckets(upper, cum, 0.50)
	if p50 <= 0 || p50 > 0.01 {
		t.Fatalf("p50 = %v, want within first bucket", p50)
	}
	p95 := QuantileFromBuckets(upper, cum, 0.95)
	if p95 <= 0.1 || p95 > 1 {
		t.Fatalf("p95 = %v, want in the 1s bucket", p95)
	}
}

func TestParsePrometheusEscapes(t *testing.T) {
	in := `m{l="a\"b\\c\nd"} 3`
	s, err := ParsePrometheus(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Value("m", "l", "a\"b\\c\nd"); !ok || v != 3 {
		t.Fatalf("escaped label lookup failed: %v %v", v, ok)
	}
}

// TestParsePrometheusTrailingTokens covers the tolerated suffixes other
// exporters emit after the value: timestamps, OpenMetrics exemplars,
// and trailing comment tokens. The parser keeps the value and ignores
// the rest.
func TestParsePrometheusTrailingTokens(t *testing.T) {
	in := strings.Join([]string{
		`with_ts{a="b"} 1.5 1700000000000`,
		`bare_ts 2 1700000000000`,
		`h_bucket{le="0.1"} 7 # {trace_id="abc",span_id="def"} 0.089 1700000000000`,
		`brace_value{l="x}y"} 3`,
	}, "\n")
	s, err := ParsePrometheus(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Value("with_ts", "a", "b"); !ok || v != 1.5 {
		t.Fatalf("timestamped labeled sample = %v (ok=%v), want 1.5", v, ok)
	}
	if v, ok := s.Value("bare_ts"); !ok || v != 2 {
		t.Fatalf("timestamped bare sample = %v (ok=%v), want 2", v, ok)
	}
	if v, ok := s.Value("h_bucket", "le", "0.1"); !ok || v != 7 {
		t.Fatalf("exemplar sample = %v (ok=%v), want 7", v, ok)
	}
	if v, ok := s.Value("brace_value", "l", "x}y"); !ok || v != 3 {
		t.Fatalf("brace-in-label sample = %v (ok=%v), want 3", v, ok)
	}
}

func TestParsePrometheusMalformed(t *testing.T) {
	for _, in := range []string{
		"name_only",
		"m{unterminated 1",
		`m{l="v"} notafloat`,
		`m{l=noquote} 1`,
	} {
		if _, err := ParsePrometheus(strings.NewReader(in)); err == nil {
			t.Fatalf("%q parsed without error", in)
		}
	}
	// Comments and blank lines are fine.
	if s, err := ParsePrometheus(strings.NewReader("# HELP x y\n\n# TYPE x counter\nx 1\n")); err != nil || len(s.Samples) != 1 {
		t.Fatalf("comment handling: %v %+v", err, s)
	}
}

func TestDeltaBuckets(t *testing.T) {
	prev := []uint64{5, 10, 20}
	cur := []uint64{8, 14, 30}
	if got := DeltaBuckets(cur, prev); got[0] != 3 || got[1] != 4 || got[2] != 10 {
		t.Fatalf("delta = %v", got)
	}
	if DeltaBuckets(cur, []uint64{1, 2}) != nil {
		t.Fatal("layout mismatch must return nil")
	}
	if DeltaBuckets([]uint64{1, 2, 3}, prev) != nil {
		t.Fatal("counter reset must return nil")
	}
}

func TestQuantileFromBucketsEdgeCases(t *testing.T) {
	if !math.IsNaN(QuantileFromBuckets(nil, nil, 0.5)) {
		t.Fatal("empty histogram must be NaN")
	}
	if !math.IsNaN(QuantileFromBuckets([]float64{1}, []uint64{0, 0}, 0.5)) {
		t.Fatal("zero-count histogram must be NaN")
	}
	// All mass in the overflow bucket: clamp to the last finite bound.
	if got := QuantileFromBuckets([]float64{1, 2}, []uint64{0, 0, 10}, 0.99); got != 2 {
		t.Fatalf("overflow clamp = %v, want 2", got)
	}
}

package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

// sloFixture builds a latency SLO over a fake-clocked windowed histogram
// registered into an engine, returning the pieces the tests drive.
func sloFixture(t *testing.T, reg *Registry) (*SLOEngine, *WindowedHistogram, *fakeClock) {
	t.Helper()
	w, clk := newTestWindowHist(8*time.Second, 16, []float64{0.005, 0.01, 0.05, 0.1})
	e := NewSLOEngine(reg)
	// p90 < 10ms, fast 1s / slow 4s. Budget 10%: breach needs a bad
	// fraction ≥ 80% sustained across both windows.
	e.Register(NewLatencySLO("tile_latency_p90", w, 0.90, 0.010, time.Second, 4*time.Second))
	return e, w, clk
}

func TestSLOLatencyBreachAndRecovery(t *testing.T) {
	reg := NewRegistry()
	e, w, clk := sloFixture(t, reg)

	var mu sync.Mutex
	var seen []SLOTransition
	e.Subscribe(func(tr SLOTransition) {
		mu.Lock()
		seen = append(seen, tr)
		mu.Unlock()
	})

	// Healthy traffic: everything under threshold, state stays ok.
	for i := 0; i < 100; i++ {
		w.Observe(0.002)
	}
	if trs := e.Tick(time.Now()); len(trs) != 0 {
		t.Fatalf("healthy traffic fired transitions: %+v", trs)
	}

	// Gray failure: all observations blow the threshold. Fill both the
	// fast and slow windows so both burns saturate.
	for step := 0; step < 10; step++ {
		for i := 0; i < 50; i++ {
			w.Observe(0.08)
		}
		clk.advance(500 * time.Millisecond)
	}
	trs := e.Tick(time.Now())
	if len(trs) == 0 {
		t.Fatal("sustained badness fired no transition")
	}
	last := trs[len(trs)-1]
	if last.To != SLOBreach {
		t.Fatalf("expected breach, got %s (fast=%.1f slow=%.1f)", last.ToName, last.FastBurn, last.SlowBurn)
	}
	if !e.Breached() {
		t.Fatal("Breached() false after breach transition")
	}
	if v, ok := reg.Value("adcnn_slo_state", "tile_latency_p90"); !ok || v != float64(SLOBreach) {
		t.Fatalf("adcnn_slo_state gauge = %v (ok=%v), want %d", v, ok, SLOBreach)
	}

	// Recovery: the bad observations age out of both windows.
	clk.advance(10 * time.Second)
	for i := 0; i < 100; i++ {
		w.Observe(0.002)
	}
	e.Tick(time.Now())
	if e.Breached() {
		t.Fatalf("breach did not clear after windows drained: %+v", e.Status())
	}
	st := e.Status()
	if len(st) != 1 || st[0].State != "ok" {
		t.Fatalf("status after recovery: %+v", st)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(seen) < 2 {
		t.Fatalf("subscriber saw %d transitions, want breach+recovery", len(seen))
	}
	if seen[len(seen)-1].To != SLOOK {
		t.Fatalf("final transition %s, want ok", seen[len(seen)-1].ToName)
	}
}

func TestSLOMinEventsAbstains(t *testing.T) {
	e, w, _ := sloFixture(t, nil)
	// Three terrible observations: fewer than MinEvents, so the
	// objective must hold ok rather than indict a p90 on 3 samples.
	for i := 0; i < 3; i++ {
		w.Observe(0.08)
	}
	if trs := e.Tick(time.Now()); len(trs) != 0 {
		t.Fatalf("abstention floor ignored: %+v", trs)
	}
	if got := e.Status()[0].State; got != "ok" {
		t.Fatalf("state %s, want ok under MinEvents", got)
	}
}

func TestSLOWarnBeforeBreach(t *testing.T) {
	e, w, clk := sloFixture(t, nil)
	// Warm the slow window with healthy traffic, then push a bad burst
	// into only the fast window: fast burn spikes but slow burn stays
	// below BreachBurn → warn, not breach.
	for step := 0; step < 6; step++ {
		for i := 0; i < 200; i++ {
			w.Observe(0.002)
		}
		clk.advance(500 * time.Millisecond)
	}
	for i := 0; i < 200; i++ {
		w.Observe(0.08)
	}
	trs := e.Tick(time.Now())
	if len(trs) != 1 || trs[0].To != SLOWarn {
		t.Fatalf("want single ok→warn transition, got %+v", trs)
	}
	if e.Breached() {
		t.Fatal("short burst must not count as breach")
	}
}

func TestSLORatioObjective(t *testing.T) {
	good, clk := newTestWindowCounter(8*time.Second, 16)
	bad := NewWindowedCounter(8*time.Second, 16)
	bad.ring.nowNs = clk.now
	e := NewSLOEngine(nil)
	// Zero-fill budget 5%: breach at bad fraction ≥ 40% on both windows.
	e.Register(NewRatioSLO("zero_fill", good, bad, 0.05, time.Second, 4*time.Second))

	for step := 0; step < 10; step++ {
		good.Add(10)
		bad.Add(10) // 50% bad — 10× the budget
		clk.advance(500 * time.Millisecond)
	}
	e.Tick(time.Now())
	if !e.Breached() {
		t.Fatalf("50%% zero-fill on a 5%% budget must breach: %+v", e.Status())
	}

	clk.advance(10 * time.Second)
	for i := 0; i < 20; i++ {
		good.Add(10)
	}
	e.Tick(time.Now())
	if e.Breached() {
		t.Fatal("ratio breach did not recover")
	}
}

func TestSLORegisterValidation(t *testing.T) {
	e := NewSLOEngine(nil)
	mustPanic := func(name string, s *SLO) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: Register did not panic", name)
			}
		}()
		e.Register(s)
	}
	w := NewWindowedHistogram(time.Second, 4, nil)
	c := NewWindowedCounter(time.Second, 4)
	mustPanic("no source", &SLO{Name: "x", FastWindow: time.Second, SlowWindow: time.Second})
	mustPanic("both sources", &SLO{Name: "x", Hist: w, Good: c, Bad: c,
		Quantile: 0.9, Threshold: 1, Budget: 0.1, FastWindow: time.Second, SlowWindow: time.Second})
	mustPanic("fast > slow", &SLO{Name: "x", Hist: w, Quantile: 0.9, Threshold: 1,
		FastWindow: 2 * time.Second, SlowWindow: time.Second})
}

func TestSLONilEngine(t *testing.T) {
	var e *SLOEngine
	e.Register(&SLO{})
	e.Subscribe(func(SLOTransition) {})
	if e.Tick(time.Now()) != nil || e.Breached() || e.Status() != nil {
		t.Fatal("nil engine must be inert")
	}
}

func TestSLOBurnMath(t *testing.T) {
	// 10% of observations above threshold on a 1% budget → burn 10.
	w, _ := newTestWindowHist(time.Second, 1, []float64{0.01, 0.1})
	for i := 0; i < 90; i++ {
		w.Observe(0.005)
	}
	for i := 0; i < 10; i++ {
		w.Observe(0.05)
	}
	s := NewLatencySLO("x", w, 0.99, 0.01, time.Second, time.Second)
	burn, n := s.burn(time.Second)
	if n != 100 {
		t.Fatalf("events %d, want 100", n)
	}
	if math.Abs(burn-10) > 1.5 {
		t.Fatalf("burn %.2f, want ~10 (10%% bad / 1%% budget)", burn)
	}
}

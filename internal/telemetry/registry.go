// Package telemetry is a dependency-free observability layer for the
// ADCNN runtime: a metrics registry (counters, gauges, histograms with
// configurable buckets and quantile estimation) with Prometheus
// text-format exposition and a structured snapshot API, plus a
// lightweight tracer that records per-image / per-tile spans and exports
// Chrome trace-event JSON viewable in Perfetto or chrome://tracing.
//
// The paper's runtime is driven entirely by runtime statistics —
// Algorithm 2's EWMA throughput estimates s_k, deadline hits and misses
// against T_L, and the compression ratio of the clipped-ReLU → quantize
// → RLE pipeline. This package makes those quantities observable from
// the outside without adding third-party dependencies: everything is
// stdlib only, and the hot-path cost of an instrument is one atomic
// CAS (counter/gauge) or one short mutex hold (histogram).
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind discriminates metric families.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind in Prometheus TYPE lines.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry holds metric families keyed by name. All methods are safe for
// concurrent use; get-or-create calls return the same instrument for the
// same name+labels, so call sites may re-resolve instruments freely.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric with a fixed kind and label schema.
type family struct {
	name       string
	help       string
	kind       Kind
	labelNames []string
	buckets    []float64 // histogram upper bounds

	mu       sync.Mutex
	children map[string]any // joined label values -> *Counter/*Gauge/*Histogram
	order    []string       // insertion order of child keys (sorted at exposition)
}

// validName reports whether s is a legal Prometheus metric/label name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// lookup returns the family, creating it on first use and panicking on a
// schema conflict (same name registered with a different kind or label
// set is a programming error, not a runtime condition).
func (r *Registry) lookup(name, help string, kind Kind, buckets []float64, labelNames []string) *family {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labelNames {
		if !validName(l) {
			panic(fmt.Sprintf("telemetry: invalid label name %q", l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name: name, help: help, kind: kind,
			labelNames: append([]string(nil), labelNames...),
			buckets:    append([]float64(nil), buckets...),
			children:   make(map[string]any),
		}
		r.families[name] = f
		return f
	}
	if f.kind != kind || len(f.labelNames) != len(labelNames) {
		panic(fmt.Sprintf("telemetry: metric %q re-registered with a different schema", name))
	}
	for i, l := range labelNames {
		if f.labelNames[i] != l {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with different labels", name))
		}
	}
	return f
}

// child returns the metric for one label-value tuple, creating it with
// mk on first use.
func (f *family) child(values []string, mk func() any) any {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d",
			f.name, len(f.labelNames), len(values)))
	}
	key := joinValues(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = mk()
		f.children[key] = c
		f.order = append(f.order, key)
	}
	return c
}

// joinValues builds the child map key; \xff never appears in label text.
func joinValues(values []string) string {
	out := ""
	for i, v := range values {
		if i > 0 {
			out += "\xff"
		}
		out += v
	}
	return out
}

func splitValues(key string, n int) []string {
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	start := 0
	for i := 0; i < len(key); i++ {
		if key[i] == '\xff' {
			out = append(out, key[start:i])
			start = i + 1
		}
	}
	return append(out, key[start:])
}

// ---------------------------------------------------------------- counter

// Counter is a monotonically non-decreasing float64.
type Counter struct{ bits atomic.Uint64 }

// Add increments the counter. Negative deltas panic.
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("telemetry: counter decrease")
	}
	addFloat(&c.bits, v)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Counter returns the unlabelled counter named name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// CounterVec is a counter family with labels. A vec may carry curried
// (pre-bound) leading label values — see Curry.
type CounterVec struct {
	f   *family
	pre []string
}

// CounterVec returns the counter family named name with the given label
// schema.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.lookup(name, help, KindCounter, nil, labelNames)}
}

// With resolves one label-value tuple (appended to any curried values).
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(joinPre(v.pre, values), func() any { return &Counter{} }).(*Counter)
}

// Curry returns a view of the family with the given leading label values
// pre-bound: With on the view supplies only the remaining labels. The
// view shares the family, so differently-curried views of one vec stay
// schema-consistent — this is how per-replica instrument bundles share
// one registry without re-registering families.
func (v *CounterVec) Curry(values ...string) *CounterVec {
	return &CounterVec{f: v.f, pre: joinPre(v.pre, values)}
}

// joinPre concatenates curried and call-site label values.
func joinPre(pre, values []string) []string {
	if len(pre) == 0 {
		return values
	}
	out := make([]string, 0, len(pre)+len(values))
	return append(append(out, pre...), values...)
}

// ------------------------------------------------------------------ gauge

// Gauge is an instantaneous float64 value.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the value by v (may be negative).
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge returns the unlabelled gauge named name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help).With()
}

// GaugeVec is a gauge family with labels, optionally curried (see
// CounterVec.Curry).
type GaugeVec struct {
	f   *family
	pre []string
}

// GaugeVec returns the gauge family named name with the given label
// schema.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.lookup(name, help, KindGauge, nil, labelNames)}
}

// With resolves one label-value tuple (appended to any curried values).
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(joinPre(v.pre, values), func() any { return &Gauge{} }).(*Gauge)
}

// Curry pre-binds leading label values (see CounterVec.Curry).
func (v *GaugeVec) Curry(values ...string) *GaugeVec {
	return &GaugeVec{f: v.f, pre: joinPre(v.pre, values)}
}

// addFloat atomically adds v to a float64 stored as uint64 bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// -------------------------------------------------------------- histogram

// Histogram counts observations into cumulative buckets and tracks
// sum/count/min/max for quantile estimation.
type Histogram struct {
	upper []float64 // strictly increasing finite upper bounds

	mu     sync.Mutex
	counts []uint64 // len(upper)+1; the last is the +Inf overflow bucket
	sum    float64
	n      uint64
	min    float64
	max    float64
}

// Observe records one value. Non-finite values (NaN, ±Inf) are dropped:
// a single NaN would silently corrupt the sum and poison every quantile
// interpolated from it, and ±Inf pins min/max forever.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.mu.Unlock()
}

// ObserveDuration records a duration in seconds given nanoseconds — the
// convention for all *_seconds histograms.
func (h *Histogram) ObserveDuration(ns int64) { h.Observe(float64(ns) / 1e9) }

// Snapshot returns a consistent copy of the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Upper:  append([]float64(nil), h.upper...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.n,
		Min:    h.min,
		Max:    h.max,
	}
}

// DefBuckets is the default latency bucket layout in seconds, spanning
// sub-millisecond kernel times to multi-second deadline misses.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start and growing by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: bad exponential bucket spec")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LinearBuckets returns n linearly spaced upper bounds starting at start
// with the given width.
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic("telemetry: bad linear bucket spec")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Histogram returns the unlabelled histogram named name. nil buckets use
// DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.HistogramVec(name, help, buckets).With()
}

// HistogramVec is a histogram family with labels, optionally curried
// (see CounterVec.Curry).
type HistogramVec struct {
	f   *family
	pre []string
}

// HistogramVec returns the histogram family named name with the given
// bucket layout and label schema. nil buckets use DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q buckets not increasing", name))
		}
	}
	return &HistogramVec{f: r.lookup(name, help, KindHistogram, buckets, labelNames)}
}

// With resolves one label-value tuple (appended to any curried values).
func (v *HistogramVec) With(values ...string) *Histogram {
	f := v.f
	return f.child(joinPre(v.pre, values), func() any {
		return &Histogram{upper: f.buckets, counts: make([]uint64, len(f.buckets)+1)}
	}).(*Histogram)
}

// Curry pre-binds leading label values (see CounterVec.Curry).
func (v *HistogramVec) Curry(values ...string) *HistogramVec {
	return &HistogramVec{f: v.f, pre: joinPre(v.pre, values)}
}

// --------------------------------------------------------------- snapshot

// Snapshot is a point-in-time copy of every metric, for tests and JSON.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// FamilySnapshot is one metric family's state.
type FamilySnapshot struct {
	Name    string           `json:"name"`
	Help    string           `json:"help,omitempty"`
	Kind    string           `json:"kind"`
	Labels  []string         `json:"labels,omitempty"`
	Metrics []MetricSnapshot `json:"metrics"`
}

// MetricSnapshot is one labelled instrument's state.
type MetricSnapshot struct {
	LabelValues []string           `json:"label_values,omitempty"`
	Value       float64            `json:"value"` // counter total / gauge level / histogram sum
	Histogram   *HistogramSnapshot `json:"histogram,omitempty"`
}

// HistogramSnapshot is a histogram's bucket state.
type HistogramSnapshot struct {
	Upper  []float64 `json:"upper"` // finite upper bounds; overflow bucket implied
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// inside the bucket containing the target rank, clamped to the observed
// [min, max]. Returns NaN for an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			lo := s.Min
			if i > 0 {
				lo = s.Upper[i-1]
			}
			hi := s.Max
			if i < len(s.Upper) && s.Upper[i] < hi {
				hi = s.Upper[i]
			}
			if lo > hi {
				lo = hi
			}
			frac := (rank - float64(cum)) / float64(c)
			v := lo + (hi-lo)*frac
			return math.Max(s.Min, math.Min(s.Max, v))
		}
		cum += c
	}
	return s.Max
}

// FractionAbove estimates the fraction of observations strictly above v
// by linear interpolation inside the bucket containing v (the same
// interpolation Quantile uses, so the two agree: FractionAbove(Quantile(q))
// ≈ 1−q). Returns 0 for an empty histogram.
func (s HistogramSnapshot) FractionAbove(v float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if v < s.Min {
		return 1
	}
	if v >= s.Max {
		return 0
	}
	var below, cum uint64
	for i, c := range s.Counts {
		lo := s.Min
		if i > 0 {
			lo = s.Upper[i-1]
		}
		hi := s.Max
		if i < len(s.Upper) && s.Upper[i] < hi {
			hi = s.Upper[i]
		}
		if i < len(s.Upper) && s.Upper[i] < v {
			cum += c
			continue
		}
		// v falls in this bucket (or past the last finite bound).
		below = cum
		if c > 0 && hi > lo {
			frac := (v - lo) / (hi - lo)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			below += uint64(frac * float64(c))
		}
		break
	}
	above := float64(s.Count-below) / float64(s.Count)
	return math.Max(0, math.Min(1, above))
}

// Snapshot captures every family, sorted by metric name and label tuple.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var out Snapshot
	for _, f := range fams {
		fs := FamilySnapshot{
			Name: f.name, Help: f.help, Kind: f.kind.String(),
			Labels: append([]string(nil), f.labelNames...),
		}
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		children := make(map[string]any, len(f.children))
		for k, v := range f.children {
			children[k] = v
		}
		f.mu.Unlock()
		sort.Strings(keys)
		for _, key := range keys {
			ms := MetricSnapshot{LabelValues: splitValues(key, len(f.labelNames))}
			switch m := children[key].(type) {
			case *Counter:
				ms.Value = m.Value()
			case *Gauge:
				ms.Value = m.Value()
			case *Histogram:
				hs := m.Snapshot()
				ms.Histogram = &hs
				ms.Value = hs.Sum
			}
			fs.Metrics = append(fs.Metrics, ms)
		}
		out.Families = append(out.Families, fs)
	}
	return out
}

// Value looks one metric value up by name and label values: counter
// total, gauge level, or histogram observation count. ok is false when
// the metric does not exist.
func (r *Registry) Value(name string, labelValues ...string) (v float64, ok bool) {
	r.mu.Lock()
	f := r.families[name]
	r.mu.Unlock()
	if f == nil {
		return 0, false
	}
	f.mu.Lock()
	c, ok := f.children[joinValues(labelValues)]
	f.mu.Unlock()
	if !ok {
		return 0, false
	}
	switch m := c.(type) {
	case *Counter:
		return m.Value(), true
	case *Gauge:
		return m.Value(), true
	case *Histogram:
		return float64(m.Snapshot().Count), true
	}
	return 0, false
}

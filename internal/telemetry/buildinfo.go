package telemetry

// RegisterBuildInfo exports the binary's identity as the conventional
// constant-1 info gauge:
//
//	adcnn_build_info{component,revision,go_version,kernel_tier} 1
//
// so one scrape across a fleet answers "which build and kernel tier is
// each daemon actually running". component names the daemon
// ("central", "conv", ...); kernelTier is the runtime-dispatched SIMD
// tier (tensor.DetectedKernelTier().String(), passed in by the caller
// to keep this package free of a tensor dependency). revision comes
// from the embedded VCS stamp and reads "unknown" for unstamped builds
// (plain `go test`, `go run`).
func RegisterBuildInfo(reg *Registry, component, kernelTier string) {
	if reg == nil {
		return
	}
	h := HostInfo()
	rev := h.GitCommit
	if rev == "" {
		rev = "unknown"
	}
	if kernelTier == "" {
		kernelTier = "unknown"
	}
	reg.GaugeVec("adcnn_build_info",
		"Build identity of this binary; the value is always 1, the labels carry the information.",
		"component", "revision", "go_version", "kernel_tier").
		With(component, rev, h.GoVersion, kernelTier).Set(1)
}

package telemetry

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"
)

// SLO evaluation: declarative objectives over the sliding-window
// instruments, judged with the multi-window burn-rate method. Each
// objective defines an error budget (the tolerated fraction of bad
// events) and the engine compares the observed bad fraction against
// that budget over two windows at once: a fast window for detection
// latency and a slow window so a single hiccup cannot trip the alarm.
// burn = badFraction / budget, so burn 1 means "spending budget exactly
// as fast as allowed". The state machine is ok → warn → breach:
//
//	breach  when fast AND slow burn ≥ BreachBurn (sustained, severe)
//	warn    when fast OR slow burn ≥ WarnBurn
//	ok      otherwise
//
// Recovery is symmetric — the slow window's memory is the hysteresis,
// so a breach clears only once the bad events age out of it.

// SLOState is an objective's current judgment.
type SLOState uint8

// Objective states, ordered by severity.
const (
	SLOOK SLOState = iota
	SLOWarn
	SLOBreach
)

// String names the state for logs, gauges, and the ops console.
func (s SLOState) String() string {
	switch s {
	case SLOOK:
		return "ok"
	case SLOWarn:
		return "warn"
	case SLOBreach:
		return "breach"
	}
	return "unknown"
}

// SLO is one declarative objective. Exactly one of the two sources is
// set: a windowed histogram judged against a latency threshold at a
// quantile (budget = 1−Quantile, a bad event is an observation above
// Threshold), or a good/bad windowed counter pair judged against an
// explicit Budget ratio.
type SLO struct {
	Name string

	// Latency-quantile objective: "Quantile of Hist must stay below
	// Threshold", e.g. p99 tile latency < 25ms.
	Hist      *WindowedHistogram
	Quantile  float64
	Threshold float64 // same unit as the histogram's observations

	// Ratio objective: Bad/(Good+Bad) must stay within Budget,
	// e.g. zero-filled tiles < 1% of dispatched.
	Good, Bad *WindowedCounter
	Budget    float64

	FastWindow time.Duration
	SlowWindow time.Duration

	// Burn thresholds; zero values take the defaults.
	WarnBurn   float64
	BreachBurn float64

	// MinEvents is the fast-window event floor below which the
	// objective abstains (stays in its current state): a handful of
	// samples cannot indict or acquit a tail quantile.
	MinEvents uint64
}

// Default burn thresholds and evaluation interval.
const (
	DefaultWarnBurn   = 1.0
	DefaultBreachBurn = 8.0
	DefaultMinEvents  = 8
	DefaultSLOTick    = 100 * time.Millisecond
)

// NewLatencySLO declares a latency objective: quantile q of h over the
// fast/slow windows must stay below threshold (seconds, matching the
// *_seconds histogram convention).
func NewLatencySLO(name string, h *WindowedHistogram, q, threshold float64, fast, slow time.Duration) *SLO {
	if q <= 0 || q >= 1 {
		panic("telemetry: SLO quantile out of (0,1)")
	}
	return &SLO{Name: name, Hist: h, Quantile: q, Threshold: threshold,
		FastWindow: fast, SlowWindow: slow}
}

// NewRatioSLO declares an error-ratio objective: bad/(good+bad) over
// the fast/slow windows must stay within budget.
func NewRatioSLO(name string, good, bad *WindowedCounter, budget float64, fast, slow time.Duration) *SLO {
	if budget <= 0 || budget >= 1 {
		panic("telemetry: SLO budget out of (0,1)")
	}
	return &SLO{Name: name, Good: good, Bad: bad, Budget: budget,
		FastWindow: fast, SlowWindow: slow}
}

// burn returns the burn rate and event count over one window.
func (s *SLO) burn(window time.Duration) (burn float64, events uint64) {
	if s.Hist != nil {
		snap := s.Hist.Snapshot(window)
		if snap.Count == 0 {
			return 0, 0
		}
		budget := 1 - s.Quantile
		return snap.FractionAbove(s.Threshold) / budget, snap.Count
	}
	good := s.Good.Total(window)
	bad := s.Bad.Total(window)
	total := good + bad
	if total <= 0 {
		return 0, 0
	}
	return (bad / total) / s.Budget, uint64(total)
}

// SLOTransition is one state change, delivered to subscribers.
type SLOTransition struct {
	Objective string    `json:"objective"`
	From      SLOState  `json:"-"`
	To        SLOState  `json:"-"`
	FromName  string    `json:"from"`
	ToName    string    `json:"to"`
	At        time.Time `json:"at"`
	FastBurn  float64   `json:"fast_burn"`
	SlowBurn  float64   `json:"slow_burn"`
	Detail    string    `json:"detail"`
}

// SLOStatus is one objective's current judgment, for /healthz bodies
// and the ops console.
type SLOStatus struct {
	Objective string    `json:"objective"`
	State     string    `json:"state"`
	Since     time.Time `json:"since"`
	FastBurn  float64   `json:"fast_burn"`
	SlowBurn  float64   `json:"slow_burn"`
}

// objectiveState is the engine's per-objective bookkeeping.
type objectiveState struct {
	slo   *SLO
	state SLOState
	since time.Time

	fastBurn, slowBurn float64

	stateGauge *Gauge // nil when the engine has no registry
	fastGauge  *Gauge
	slowGauge  *Gauge
}

// SLOEngine evaluates registered objectives on Tick and fans state
// transitions out to subscribers. All methods are safe for concurrent
// use and nil-receiver safe, matching the rest of the telemetry layer.
// When built over a Registry the engine exports per-objective gauges —
// adcnn_slo_state{objective} (0 ok / 1 warn / 2 breach) and
// adcnn_slo_burn{objective,window} — so /metrics carries the judgment
// and the ops console needs no extra endpoint.
type SLOEngine struct {
	mu       sync.Mutex
	objs     []*objectiveState
	subs     []func(SLOTransition)
	breached int

	stateVec *GaugeVec
	burnVec  *GaugeVec
}

// NewSLOEngine creates an engine. reg may be nil (no gauge export).
func NewSLOEngine(reg *Registry) *SLOEngine {
	e := &SLOEngine{}
	if reg != nil {
		e.stateVec = reg.GaugeVec("adcnn_slo_state",
			"SLO objective state: 0 ok, 1 warn, 2 breach.", "objective")
		e.burnVec = reg.GaugeVec("adcnn_slo_burn",
			"SLO burn rate (bad fraction over error budget) per evaluation window.", "objective", "window")
	}
	return e
}

// Register adds an objective, filling zero thresholds with defaults.
func (e *SLOEngine) Register(s *SLO) {
	if e == nil {
		return
	}
	if (s.Hist == nil) == (s.Good == nil || s.Bad == nil) {
		panic("telemetry: SLO needs exactly one of Hist or Good/Bad")
	}
	if s.FastWindow <= 0 || s.SlowWindow < s.FastWindow {
		panic("telemetry: SLO windows need 0 < fast <= slow")
	}
	if s.WarnBurn == 0 {
		s.WarnBurn = DefaultWarnBurn
	}
	if s.BreachBurn == 0 {
		s.BreachBurn = DefaultBreachBurn
	}
	if s.MinEvents == 0 {
		s.MinEvents = DefaultMinEvents
	}
	st := &objectiveState{slo: s, since: time.Now()}
	if e.stateVec != nil {
		st.stateGauge = e.stateVec.With(s.Name)
		st.fastGauge = e.burnVec.With(s.Name, "fast")
		st.slowGauge = e.burnVec.With(s.Name, "slow")
	}
	e.mu.Lock()
	e.objs = append(e.objs, st)
	e.mu.Unlock()
}

// Subscribe registers a callback invoked (outside the engine lock, on
// the ticking goroutine) for every state transition.
func (e *SLOEngine) Subscribe(fn func(SLOTransition)) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.subs = append(e.subs, fn)
	e.mu.Unlock()
}

// Tick evaluates every objective once and returns the transitions that
// fired. Subscribers run before Tick returns.
func (e *SLOEngine) Tick(now time.Time) []SLOTransition {
	if e == nil {
		return nil
	}
	var fired []SLOTransition
	e.mu.Lock()
	subs := e.subs
	for _, st := range e.objs {
		s := st.slo
		fastBurn, fastN := s.burn(s.FastWindow)
		slowBurn, _ := s.burn(s.SlowWindow)
		st.fastBurn, st.slowBurn = fastBurn, slowBurn
		if st.fastGauge != nil {
			st.fastGauge.Set(fastBurn)
			st.slowGauge.Set(slowBurn)
		}
		next := st.state
		switch {
		case fastN < s.MinEvents && fastN > 0:
			// Too thin to judge; hold the current state. A fully empty
			// fast window falls through: burns are 0, so a quiet system
			// recovers rather than latching breach forever.
		case fastBurn >= s.BreachBurn && slowBurn >= s.BreachBurn:
			next = SLOBreach
		case fastBurn >= s.WarnBurn || slowBurn >= s.WarnBurn:
			next = SLOWarn
		default:
			next = SLOOK
		}
		if next != st.state {
			tr := SLOTransition{
				Objective: s.Name,
				From:      st.state, To: next,
				FromName: st.state.String(), ToName: next.String(),
				At: now, FastBurn: fastBurn, SlowBurn: slowBurn,
				Detail: s.detail(fastBurn, slowBurn),
			}
			if next == SLOBreach {
				e.breached++
			}
			if st.state == SLOBreach {
				e.breached--
			}
			st.state = next
			st.since = now
			fired = append(fired, tr)
		}
		if st.stateGauge != nil {
			st.stateGauge.Set(float64(st.state))
		}
	}
	e.mu.Unlock()
	for _, tr := range fired {
		for _, fn := range subs {
			fn(tr)
		}
	}
	return fired
}

// detail renders the objective's current numbers for transition logs.
func (s *SLO) detail(fastBurn, slowBurn float64) string {
	if s.Hist != nil {
		q := s.Hist.Quantile(s.FastWindow, s.Quantile)
		if math.IsNaN(q) {
			q = 0
		}
		return fmt.Sprintf("p%g=%.1fms threshold=%.1fms fast_burn=%.1f slow_burn=%.1f",
			s.Quantile*100, q*1e3, s.Threshold*1e3, fastBurn, slowBurn)
	}
	return fmt.Sprintf("bad_ratio_budget=%.3g fast_burn=%.1f slow_burn=%.1f",
		s.Budget, fastBurn, slowBurn)
}

// Run ticks the engine every interval until ctx is cancelled. interval
// ≤ 0 uses DefaultSLOTick.
func (e *SLOEngine) Run(ctx context.Context, interval time.Duration) {
	if e == nil {
		return
	}
	if interval <= 0 {
		interval = DefaultSLOTick
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			e.Tick(now)
		}
	}
}

// Breached reports whether any objective is currently in breach — the
// /healthz wiring for load balancers: 503 while this is true.
func (e *SLOEngine) Breached() bool {
	if e == nil {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.breached > 0
}

// Status snapshots every objective's current judgment.
func (e *SLOEngine) Status() []SLOStatus {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]SLOStatus, 0, len(e.objs))
	for _, st := range e.objs {
		out = append(out, SLOStatus{
			Objective: st.slo.Name,
			State:     st.state.String(),
			Since:     st.since,
			FastBurn:  st.fastBurn,
			SlowBurn:  st.slowBurn,
		})
	}
	return out
}

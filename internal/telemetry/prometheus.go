package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, histograms expanded
// into cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.Snapshot().Families {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		for _, m := range f.Metrics {
			if m.Histogram == nil {
				if _, err := fmt.Fprintf(w, "%s%s %s\n",
					f.Name, labelString(f.Labels, m.LabelValues, "", ""), formatFloat(m.Value)); err != nil {
					return err
				}
				continue
			}
			h := m.Histogram
			var cum uint64
			for i, upper := range h.Upper {
				cum += h.Counts[i]
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					f.Name, labelString(f.Labels, m.LabelValues, "le", formatFloat(upper)), cum); err != nil {
					return err
				}
			}
			cum += h.Counts[len(h.Upper)]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.Name, labelString(f.Labels, m.LabelValues, "le", "+Inf"), cum); err != nil {
				return err
			}
			suffix := labelString(f.Labels, m.LabelValues, "", "")
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
				f.Name, suffix, formatFloat(h.Sum), f.Name, suffix, h.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// labelString renders {k="v",...}, optionally appending one extra pair
// (the histogram le bound); empty when there are no pairs at all.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestTraceExportRoundTrip writes a trace with every event flavour and
// validates the JSON against the Chrome trace-event schema on the way
// back in: known fields only (DisallowUnknownFields), legal phase codes,
// microsecond timestamps, and span durations.
func TestTraceExportRoundTrip(t *testing.T) {
	tr := NewTrace()
	tr.SetThreadName(0, "central")
	tr.SetThreadName(1, "conv-0")
	tr.Span("image 1", "image", 0, 0, 250*time.Millisecond, map[string]any{"missed": 0})
	tr.Span("tile 3", "tile", 1, 10*time.Millisecond, 40*time.Millisecond, nil)
	tr.Instant("zero-fill", "central", 0, 200*time.Millisecond, map[string]any{"missed": 2})
	sp := tr.Begin("back", "compute", 0)
	sp.End(nil)

	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(raw) {
		t.Fatal("trace file is not valid JSON")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	evs, err := ReadTraceFile(f)
	if err != nil {
		t.Fatalf("schema violation: %v", err)
	}
	if len(evs) != 6 {
		t.Fatalf("got %d events, want 6", len(evs))
	}
	spans, instants, meta := 0, 0, 0
	for _, ev := range evs {
		switch ev.Ph {
		case "X":
			spans++
			if ev.Dur < 0 {
				t.Fatalf("span %q has negative duration", ev.Name)
			}
		case "i":
			instants++
			if ev.Scope != "t" {
				t.Fatalf("instant %q missing scope", ev.Name)
			}
		case "M":
			meta++
		default:
			t.Fatalf("illegal phase %q", ev.Ph)
		}
		if ev.Name == "" || ev.PID != 1 || ev.TS < 0 {
			t.Fatalf("malformed event %+v", ev)
		}
	}
	if spans != 3 || instants != 1 || meta != 2 {
		t.Fatalf("event mix spans=%d instants=%d meta=%d", spans, instants, meta)
	}
	// Virtual-time offsets must survive the µs conversion exactly.
	for _, ev := range evs {
		if ev.Name == "tile 3" && (ev.TS != 10000 || ev.Dur != 40000) {
			t.Fatalf("tile span ts/dur = %v/%v, want 10000/40000", ev.TS, ev.Dur)
		}
	}
}

// TestNilTraceIsInert proves instrumentation sites need no guards.
func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	tr.Span("x", "", 0, 0, time.Second, nil)
	tr.Instant("y", "", 0, 0, nil)
	tr.SetThreadName(0, "z")
	tr.Begin("w", "", 0).End(nil)
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil trace must record nothing")
	}
	if err := tr.WriteJSON(&failWriter{}); err != nil {
		t.Fatal("nil trace WriteJSON must be a no-op")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, os.ErrClosed }

// TestHTTPEndpoints exercises the /metrics, /healthz and pprof handlers.
func TestHTTPEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total", "Requests.").Inc()
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		_, _ = b.ReadFrom(resp.Body)
		return resp.StatusCode, b.String()
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "up_total 1") {
		t.Fatalf("/metrics: %d %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: %d", code)
	}
}

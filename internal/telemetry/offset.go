package telemetry

import "sync"

// OffsetEstimator maps a remote peer's monotonic clock onto the local
// one from request/response timestamp quadruples, NTP-style. For each
// exchange the caller supplies
//
//	t0  local clock, request sent
//	t1  remote clock, request received
//	t2  remote clock, response sent
//	t3  local clock, response received
//
// The midpoint offset sample θ = ((t1−t0)+(t2−t3))/2 estimates how far
// the remote clock is ahead of the local one, with error bounded by
// half the round-trip asymmetry; RTT = (t3−t0)−(t2−t1) is the pure
// network time of the exchange. Samples are folded into an EWMA whose
// effective weight shrinks for high-RTT exchanges (their midpoint is
// less trustworthy), scaled by the minimum RTT seen so far — a cheap
// stand-in for the "pick the lowest-RTT sample" filter of full NTP.
//
// Offset() returns the value to ADD to remote timestamps to express
// them on the local clock. All methods are safe for concurrent use and
// no-ops on a nil receiver.
type OffsetEstimator struct {
	mu      sync.Mutex
	alpha   float64
	offset  float64 // EWMA of −θ: add to remote timestamps
	rtt     float64 // EWMA of sample RTT (ns)
	minRTT  int64
	samples int64
}

// DefaultOffsetAlpha is the EWMA weight for minimum-RTT samples.
const DefaultOffsetAlpha = 0.2

// NewOffsetEstimator creates an estimator with EWMA weight alpha in
// (0,1]; alpha ≤ 0 uses DefaultOffsetAlpha.
func NewOffsetEstimator(alpha float64) *OffsetEstimator {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultOffsetAlpha
	}
	return &OffsetEstimator{alpha: alpha}
}

// Update folds one exchange into the estimate and returns the updated
// offset and this sample's RTT (both ns). Samples with negative RTT
// (clock torn mid-exchange) are dropped.
func (e *OffsetEstimator) Update(t0, t1, t2, t3 int64) (offsetNs, rttNs int64) {
	if e == nil {
		return 0, 0
	}
	rtt := (t3 - t0) - (t2 - t1)
	if rtt < 0 {
		e.mu.Lock()
		defer e.mu.Unlock()
		return int64(e.offset), rtt
	}
	// θ = remote ahead of local; we store −θ so Offset() is additive.
	theta := (float64(t1-t0) + float64(t2-t3)) / 2
	sample := -theta
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.samples == 0 || rtt < e.minRTT {
		e.minRTT = rtt
	}
	w := e.alpha
	if rtt > e.minRTT {
		// Derate by how much slower than the best exchange this one was.
		w *= float64(e.minRTT+1) / float64(rtt+1)
	}
	if e.samples == 0 {
		e.offset = sample
		e.rtt = float64(rtt)
	} else {
		e.offset += w * (sample - e.offset)
		e.rtt += e.alpha * (float64(rtt) - e.rtt)
	}
	e.samples++
	return int64(e.offset), rtt
}

// Offset returns the current estimate: add to remote timestamps to map
// them onto the local clock.
func (e *OffsetEstimator) Offset() int64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return int64(e.offset)
}

// RTT returns the smoothed round-trip time in nanoseconds.
func (e *OffsetEstimator) RTT() int64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return int64(e.rtt)
}

// MinRTT returns the smallest RTT observed so far.
func (e *OffsetEstimator) MinRTT() int64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.minRTT
}

// Samples returns how many exchanges have been folded in.
func (e *OffsetEstimator) Samples() int64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.samples
}

package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Check is a liveness or readiness probe: nil means healthy, an error
// is rendered into the 503 body so the operator sees *why* from curl.
type Check func() error

// Handler returns an http.Handler exposing the registry:
//
//	/metrics       Prometheus text format
//	/healthz       liveness probe ("ok", or 503 with the failing check's error)
//	/readyz        readiness probe (same contract as /healthz)
//	/debug/pprof/  the standard Go profiler endpoints
//
// Daemons mount additional debug endpoints on the mux before serving:
// the Central adds /debug/flight (flight-recorder ring + dumps),
// /debug/sessions (per-node session state) and /debug/sched (scheduler
// decision audit); see Mux.
func Handler(r *Registry) http.Handler { return Mux(r) }

// Mux is Handler returning the concrete mux, so daemons can mount
// extra debug endpoints (/debug/flight, /debug/sessions, /debug/sched)
// beside the standard set before serving. Probes always pass; use
// MuxChecks to wire real liveness/readiness.
func Mux(r *Registry) *http.ServeMux { return MuxChecks(r, nil, nil) }

// MuxChecks is Mux with explicit probes: /healthz serves live and
// /readyz serves ready (a nil Check always passes). The split follows
// the usual load-balancer contract — liveness says "don't restart me",
// readiness says "send me traffic": a Conv node is live from startup
// but not ready until it holds weights and a Central session; a
// Central flips /healthz to 503 while any SLO objective is in breach
// so a balancer drains it.
func MuxChecks(r *Registry, live, ready Check) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", probeHandler(live))
	mux.HandleFunc("/readyz", probeHandler(ready))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// probeHandler renders one Check as a probe endpoint.
func probeHandler(check Check) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if check != nil {
			if err := check(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintln(w, err.Error())
				return
			}
		}
		fmt.Fprintln(w, "ok")
	}
}

// Serve starts the metrics endpoint on addr in a background goroutine
// and returns the bound listener address (useful with ":0") and the
// server for shutdown. The server's terminal error is ignored: metrics
// are best-effort and must never take the inference path down.
func Serve(addr string, r *Registry) (*http.Server, net.Addr, error) {
	return ServeMux(addr, Mux(r))
}

// ServeMux is Serve for a caller-built handler (typically Mux(r) plus
// extra debug endpoints).
func ServeMux(addr string, h http.Handler) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}

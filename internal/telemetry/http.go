package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler exposing the registry:
//
//	/metrics       Prometheus text format
//	/healthz       liveness probe ("ok")
//	/debug/pprof/  the standard Go profiler endpoints
func Handler(r *Registry) http.Handler { return Mux(r) }

// Mux is Handler returning the concrete mux, so daemons can mount
// extra debug endpoints (/debug/flight, /debug/sessions) beside the
// standard set before serving.
func Mux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the metrics endpoint on addr in a background goroutine
// and returns the bound listener address (useful with ":0") and the
// server for shutdown. The server's terminal error is ignored: metrics
// are best-effort and must never take the inference path down.
func Serve(addr string, r *Registry) (*http.Server, net.Addr, error) {
	return ServeMux(addr, Mux(r))
}

// ServeMux is Serve for a caller-built handler (typically Mux(r) plus
// extra debug endpoints).
func ServeMux(addr string, h http.Handler) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}

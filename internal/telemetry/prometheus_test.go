package telemetry

import (
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exact text exposition: family ordering,
// HELP/TYPE lines, label rendering, cumulative histogram buckets and the
// +Inf/_sum/_count trailer.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("adcnn_images_total", "Inferences started.").Add(3)
	reg.GaugeVec("adcnn_sched_speed", "EWMA estimate s_k.", "node").With("0").Set(1.5)
	reg.GaugeVec("adcnn_sched_speed", "EWMA estimate s_k.", "node").With("1").Set(0.25)
	h := reg.Histogram("adcnn_latency_seconds", "Per-image latency.", []float64{0.1, 1})
	h.Observe(0.25)
	h.Observe(0.5)
	h.Observe(2)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP adcnn_images_total Inferences started.
# TYPE adcnn_images_total counter
adcnn_images_total 3
# HELP adcnn_latency_seconds Per-image latency.
# TYPE adcnn_latency_seconds histogram
adcnn_latency_seconds_bucket{le="0.1"} 0
adcnn_latency_seconds_bucket{le="1"} 2
adcnn_latency_seconds_bucket{le="+Inf"} 3
adcnn_latency_seconds_sum 2.75
adcnn_latency_seconds_count 3
# HELP adcnn_sched_speed EWMA estimate s_k.
# TYPE adcnn_sched_speed gauge
adcnn_sched_speed{node="0"} 1.5
adcnn_sched_speed{node="1"} 0.25
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("e_total", "", "path").With("a\\b\"c\nd").Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `e_total{path="a\\b\"c\nd"} 1`) {
		t.Fatalf("unescaped output:\n%s", b.String())
	}
}

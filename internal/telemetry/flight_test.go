package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
)

func TestFlightRecorderRingWraps(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.Record("ev", uint32(i), i, -1, "")
	}
	evs := f.Events()
	if len(evs) != 4 {
		t.Fatalf("ring of 4 holds %d events", len(evs))
	}
	for i, ev := range evs {
		if want := uint32(6 + i); ev.Image != want {
			t.Fatalf("event %d: image %d, want %d (oldest-first after wrap)", i, ev.Image, want)
		}
	}
}

func TestFlightDumpFiltersByImage(t *testing.T) {
	f := NewFlightRecorder(0)
	f.Record("session-down", 0, -1, 2, "conn reset") // session-scoped: image 0
	f.Record("enqueue", 7, 3, 1, "")
	f.Record("enqueue", 8, 0, 1, "")
	d := f.Dump("deadline-miss", 7)
	if d.Reason != "deadline-miss" || d.Image != 7 {
		t.Fatalf("dump header %+v", d)
	}
	if len(d.Events) != 2 {
		t.Fatalf("dump holds %d events, want image-7 + session-scoped", len(d.Events))
	}
	for _, ev := range d.Events {
		if ev.Image != 7 && ev.Image != 0 {
			t.Fatalf("dump leaked image %d", ev.Image)
		}
	}
	if got := f.Dumps(); len(got) != 1 {
		t.Fatalf("retained %d dumps", len(got))
	}
}

func TestFlightDumpListBounded(t *testing.T) {
	f := NewFlightRecorder(0)
	for i := 0; i < maxFlightDumps+5; i++ {
		f.Record("enqueue", uint32(i+1), 0, 0, "")
		f.Dump("deadline-miss", uint32(i+1))
	}
	if got := len(f.Dumps()); got != maxFlightDumps {
		t.Fatalf("retained %d dumps, want cap %d", got, maxFlightDumps)
	}
}

func TestFlightHTTPEndpoint(t *testing.T) {
	f := NewFlightRecorder(0)
	f.Record("deadline-miss", 3, 5, -1, "tile 5 of image 3 zero-filled")
	f.Dump("deadline-miss", 3)
	rec := httptest.NewRecorder()
	f.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flight", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var page struct {
		Recorded int           `json:"events_recorded"`
		Capacity int           `json:"capacity"`
		Dumps    []FlightDump  `json:"dumps"`
		Recent   []FlightEvent `json:"recent"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatalf("bad JSON from /debug/flight: %v", err)
	}
	if page.Recorded != 1 || page.Capacity != DefaultFlightSize {
		t.Fatalf("page header %+v", page)
	}
	if len(page.Dumps) != 1 || len(page.Dumps[0].Events) != 1 {
		t.Fatalf("dump missing from page: %+v", page.Dumps)
	}
	ev := page.Dumps[0].Events[0]
	if ev.Image != 3 || ev.Tile != 5 || ev.Kind != "deadline-miss" {
		t.Fatalf("dump event must name image and tile, got %+v", ev)
	}

	// Nil recorder serves an empty object, not a panic.
	var nilRec *FlightRecorder
	rec2 := httptest.NewRecorder()
	nilRec.ServeHTTP(rec2, httptest.NewRequest("GET", "/debug/flight", nil))
	if rec2.Body.String() != "{}\n" {
		t.Fatalf("nil recorder served %q", rec2.Body.String())
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record("x", 1, 2, 3, "")
	if f.Events() != nil || f.Dumps() != nil {
		t.Fatal("nil recorder must return nothing")
	}
	if d := f.Dump("r", 1); len(d.Events) != 0 {
		t.Fatal("nil recorder dump must be empty")
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(64)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				f.Record("ev", uint32(g+1), i, g, fmt.Sprintf("g%d", g))
				if i%50 == 0 {
					f.Dump("probe", uint32(g+1))
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if len(f.Events()) != 64 {
		t.Fatalf("ring should be full, holds %d", len(f.Events()))
	}
}

package telemetry

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// FlightEvent is one structured entry in the flight recorder: a compact
// record of something that happened to a tile, an image, or a session.
// AtNs is nanoseconds since the recorder's epoch. Tile and Node are −1
// when not applicable.
type FlightEvent struct {
	AtNs   int64  `json:"at_ns"`
	Kind   string `json:"kind"`
	Image  uint32 `json:"image"`
	Tile   int    `json:"tile"`
	Node   int    `json:"node"`
	Detail string `json:"detail,omitempty"`
}

// FlightDump is a triggered snapshot: the recent events relevant to one
// image, captured the moment something went wrong (a missed T_L
// deadline, a session failover).
type FlightDump struct {
	Reason string        `json:"reason"`
	Image  uint32        `json:"image"`
	At     time.Time     `json:"at"`
	Events []FlightEvent `json:"events"`
}

// FlightRecorder is a fixed-size ring buffer of FlightEvents plus a
// bounded list of triggered dumps. Recording is a mutex-guarded struct
// copy — cheap enough for the per-tile path — and all methods are
// no-ops on a nil receiver, matching the rest of the telemetry layer.
type FlightRecorder struct {
	mu       sync.Mutex
	epoch    time.Time
	buf      []FlightEvent
	next     int
	wrapped  bool
	recorded int64
	dumps    []FlightDump
}

// DefaultFlightSize is the ring capacity used when size ≤ 0.
const DefaultFlightSize = 1024

// maxFlightDumps bounds the retained dump list; older dumps fall off.
const maxFlightDumps = 32

// NewFlightRecorder creates a recorder holding the last size events.
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightSize
	}
	return &FlightRecorder{epoch: time.Now(), buf: make([]FlightEvent, size)}
}

// Record appends one event to the ring. tile/node may be −1.
func (f *FlightRecorder) Record(kind string, image uint32, tile, node int, detail string) {
	if f == nil {
		return
	}
	ev := FlightEvent{
		AtNs: int64(time.Since(f.epoch)), Kind: kind,
		Image: image, Tile: tile, Node: node, Detail: detail,
	}
	f.mu.Lock()
	f.buf[f.next] = ev
	f.next++
	if f.next == len(f.buf) {
		f.next = 0
		f.wrapped = true
	}
	f.recorded++
	f.mu.Unlock()
}

// eventsLocked returns the ring contents oldest-first. Caller holds mu.
func (f *FlightRecorder) eventsLocked() []FlightEvent {
	if !f.wrapped {
		return append([]FlightEvent(nil), f.buf[:f.next]...)
	}
	out := make([]FlightEvent, 0, len(f.buf))
	out = append(out, f.buf[f.next:]...)
	return append(out, f.buf[:f.next]...)
}

// Events returns a copy of the ring contents, oldest first.
func (f *FlightRecorder) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.eventsLocked()
}

// Dump snapshots the events relevant to image — its own events plus
// session-scoped ones (image 0) — into the retained dump list and
// returns the dump. Called when a tile misses T_L or a session fails
// over mid-image.
func (f *FlightRecorder) Dump(reason string, image uint32) FlightDump {
	if f == nil {
		return FlightDump{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	d := FlightDump{Reason: reason, Image: image, At: time.Now()}
	for _, ev := range f.eventsLocked() {
		if ev.Image == image || ev.Image == 0 {
			d.Events = append(d.Events, ev)
		}
	}
	f.dumps = append(f.dumps, d)
	if len(f.dumps) > maxFlightDumps {
		f.dumps = f.dumps[len(f.dumps)-maxFlightDumps:]
	}
	return d
}

// DumpAll snapshots the entire ring into the retained dump list —
// for triggers that are not scoped to one image, like an SLO breach,
// where the events leading up to the transition may span many images
// and sessions. Image is 0 in the resulting dump.
func (f *FlightRecorder) DumpAll(reason string) FlightDump {
	if f == nil {
		return FlightDump{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	d := FlightDump{Reason: reason, At: time.Now(), Events: f.eventsLocked()}
	f.dumps = append(f.dumps, d)
	if len(f.dumps) > maxFlightDumps {
		f.dumps = f.dumps[len(f.dumps)-maxFlightDumps:]
	}
	return d
}

// Dumps returns a copy of the retained dumps, oldest first.
func (f *FlightRecorder) Dumps() []FlightDump {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]FlightDump(nil), f.dumps...)
}

// flightPage is the /debug/flight JSON shape.
type flightPage struct {
	Epoch    time.Time     `json:"epoch"`
	Recorded int64         `json:"events_recorded"`
	Capacity int           `json:"capacity"`
	Dumps    []FlightDump  `json:"dumps"`
	Recent   []FlightEvent `json:"recent"`
}

// ServeHTTP renders the recorder as JSON: the triggered dumps first
// (that's what an operator debugging a deadline miss wants), then the
// raw recent ring.
func (f *FlightRecorder) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if f == nil {
		_, _ = w.Write([]byte("{}\n"))
		return
	}
	f.mu.Lock()
	page := flightPage{
		Epoch:    f.epoch,
		Recorded: f.recorded,
		Capacity: len(f.buf),
		Dumps:    append([]FlightDump(nil), f.dumps...),
		Recent:   f.eventsLocked(),
	}
	f.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(page)
}

package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// A minimal Prometheus text-format (0.0.4 / OpenMetrics-adjacent)
// reader — the consumer side of WritePrometheus, used by adcnn-top to
// scrape the daemons' /metrics without third-party dependencies. It
// understands what this repo emits — HELP/TYPE comments, optional
// {label="value"} sets, and a float value — and tolerates what other
// exporters append after the value: a timestamp, an OpenMetrics
// exemplar (`# {trace_id="..."} 0.5`), or other trailing tokens are
// ignored rather than rejected, so the console keeps working as metric
// families gain labels or the scrape target changes emitter.

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string
	Labels map[string]string // nil when the line has no label set
	Value  float64
}

// PromScrape indexes one scrape's samples for lookup by name and label.
type PromScrape struct {
	Samples []PromSample
	byName  map[string][]int
}

// ParsePrometheus reads text exposition into an indexed scrape.
// Malformed lines abort with an error naming the line.
func ParsePrometheus(r io.Reader) (*PromScrape, error) {
	s := &PromScrape{byName: make(map[string][]int)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sample, err := parsePromLine(line)
		if err != nil {
			return nil, fmt.Errorf("telemetry: prometheus line %d: %w", lineNo, err)
		}
		s.byName[sample.Name] = append(s.byName[sample.Name], len(s.Samples))
		s.Samples = append(s.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

func parsePromLine(line string) (PromSample, error) {
	var sample PromSample
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		sample.Name = line[:i]
		// The label set ends at the first '}' outside a quoted value: an
		// exemplar after the value carries its own braces, and a label
		// value may contain a literal '}', so neither the first nor the
		// last byte match is right without tracking quotes.
		j := promLabelSetEnd(line, i)
		if j < 0 {
			return sample, fmt.Errorf("unterminated label set")
		}
		labels, err := parsePromLabels(line[i+1 : j])
		if err != nil {
			return sample, err
		}
		sample.Labels = labels
		rest = strings.TrimSpace(line[j+1:])
	} else {
		sp := strings.IndexAny(line, " \t")
		if sp < 0 {
			return sample, fmt.Errorf("want 'name value', got %q", line)
		}
		sample.Name = line[:sp]
		rest = strings.TrimSpace(line[sp+1:])
	}
	// Everything after the value — a timestamp, an OpenMetrics exemplar
	// ("# {...} v"), or tokens from a future format revision — is
	// tolerated and ignored: only the first field is the value.
	if h := strings.Index(rest, " #"); h >= 0 {
		rest = strings.TrimSpace(rest[:h])
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return sample, fmt.Errorf("missing value in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return sample, fmt.Errorf("bad value %q", fields[0])
	}
	sample.Value = v
	return sample, nil
}

// promLabelSetEnd returns the index of the '}' closing the label set
// opened at open, skipping quoted values (with backslash escapes), or
// -1 when the set never closes.
func promLabelSetEnd(line string, open int) int {
	inQuote := false
	for i := open + 1; i < len(line); i++ {
		switch line[i] {
		case '\\':
			if inQuote {
				i++ // skip the escaped byte
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

func parsePromLabels(s string) (map[string]string, error) {
	out := make(map[string]string)
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return nil, fmt.Errorf("bad label pair in %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		// Scan the quoted value honouring \" escapes.
		i := eq + 2
		var b strings.Builder
		for i < len(s) {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case '"':
					b.WriteByte('"')
				case '\\':
					b.WriteByte('\\')
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(c)
					b.WriteByte(s[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			b.WriteByte(c)
			i++
		}
		if i >= len(s) {
			return nil, fmt.Errorf("unterminated label value in %q", s)
		}
		out[name] = b.String()
		s = strings.TrimPrefix(strings.TrimSpace(s[i+1:]), ",")
		s = strings.TrimSpace(s)
	}
	return out, nil
}

// Value returns the first sample of name whose labels include every
// given key=value pair (extra labels on the sample are ignored).
func (s *PromScrape) Value(name string, labels ...string) (float64, bool) {
	if s == nil || len(labels)%2 != 0 {
		return 0, false
	}
	for _, i := range s.byName[name] {
		sample := s.Samples[i]
		ok := true
		for j := 0; j+1 < len(labels); j += 2 {
			if sample.Labels[labels[j]] != labels[j+1] {
				ok = false
				break
			}
		}
		if ok {
			return sample.Value, true
		}
	}
	return 0, false
}

// LabelValues returns the sorted distinct values label takes across
// name's samples.
func (s *PromScrape) LabelValues(name, label string) []string {
	if s == nil {
		return nil
	}
	seen := map[string]bool{}
	for _, i := range s.byName[name] {
		if v, ok := s.Samples[i].Labels[label]; ok && !seen[v] {
			seen[v] = true
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Buckets reassembles a histogram family's cumulative buckets for the
// sample set matching the given label pairs: the finite upper bounds
// (sorted) and their cumulative counts, with the +Inf bucket last.
func (s *PromScrape) Buckets(name string, labels ...string) (upper []float64, cum []uint64) {
	if s == nil || len(labels)%2 != 0 {
		return nil, nil
	}
	type bkt struct {
		le  float64
		cum uint64
	}
	var finite []bkt
	var infCum uint64
	haveInf := false
	for _, i := range s.byName[name+"_bucket"] {
		sample := s.Samples[i]
		ok := true
		for j := 0; j+1 < len(labels); j += 2 {
			if sample.Labels[labels[j]] != labels[j+1] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		le := sample.Labels["le"]
		if le == "+Inf" {
			infCum = uint64(sample.Value)
			haveInf = true
			continue
		}
		b, err := strconv.ParseFloat(le, 64)
		if err != nil {
			continue
		}
		finite = append(finite, bkt{b, uint64(sample.Value)})
	}
	if !haveInf {
		return nil, nil
	}
	sort.Slice(finite, func(i, j int) bool { return finite[i].le < finite[j].le })
	for _, b := range finite {
		upper = append(upper, b.le)
		cum = append(cum, b.cum)
	}
	return upper, append(cum, infCum)
}

// QuantileFromBuckets estimates the q-quantile from cumulative bucket
// counts (finite upper bounds plus a trailing +Inf count), e.g. the
// delta between two /metrics scrapes. Interpolation matches
// HistogramSnapshot.Quantile with min/max unknown: the first bucket
// interpolates from 0, the overflow bucket reports the last finite
// bound. Returns NaN when the histogram is empty.
func QuantileFromBuckets(upper []float64, cum []uint64, q float64) float64 {
	if len(cum) == 0 || len(cum) != len(upper)+1 || cum[len(cum)-1] == 0 {
		return math.NaN()
	}
	total := cum[len(cum)-1]
	rank := q * float64(total)
	var prev uint64
	for i, c := range cum {
		if float64(c) >= rank && c > prev {
			lo := 0.0
			if i > 0 {
				lo = upper[i-1]
			}
			if i >= len(upper) {
				return lo // overflow bucket: clamp to the last finite bound
			}
			hi := upper[i]
			frac := (rank - float64(prev)) / float64(c-prev)
			return lo + (hi-lo)*frac
		}
		prev = c
	}
	if len(upper) > 0 {
		return upper[len(upper)-1]
	}
	return math.NaN()
}

// DeltaBuckets subtracts an earlier scrape's cumulative counts from a
// later one's, for windowed quantiles between two polls. Mismatched
// layouts return nil.
func DeltaBuckets(cur, prev []uint64) []uint64 {
	if len(cur) != len(prev) {
		return nil
	}
	out := make([]uint64, len(cur))
	for i := range cur {
		if cur[i] < prev[i] {
			return nil // counter reset (process restart)
		}
		out[i] = cur[i] - prev[i]
	}
	return out
}

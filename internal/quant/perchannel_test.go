package quant

import (
	"math"
	"math/rand"
	"testing"
)

func TestQuantizePerChannelRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	outC, k, kp := 5, 21, 32
	w := make([]float32, outC*k)
	for i := range w {
		w[i] = (rng.Float32()*2 - 1) * float32(math.Pow(10, float64(i%4)-2))
	}
	pc, err := QuantizePerChannel(w, outC, k, kp)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float32, k)
	for oc := 0; oc < outC; oc++ {
		pc.Dequantize(oc, buf)
		maxErr := float64(pc.MaxError(oc))
		var sum int32
		for i := 0; i < k; i++ {
			if d := math.Abs(float64(buf[i] - w[oc*k+i])); d > maxErr*1.0001 {
				t.Fatalf("channel %d weight %d: |Δ|=%g > half-scale %g", oc, i, d, maxErr)
			}
		}
		for i := 0; i < kp; i++ {
			q := pc.Data[oc*kp+i]
			if i >= k && q != 0 {
				t.Fatalf("channel %d: pad position %d not zero", oc, i)
			}
			sum += int32(q)
		}
		if sum != pc.RowSum[oc] {
			t.Fatalf("channel %d: RowSum %d, recomputed %d", oc, pc.RowSum[oc], sum)
		}
	}
}

// TestQuantizePerChannelIndependentScales: a channel with tiny weights
// must not inherit the coarse scale of a channel with huge weights —
// that is the whole point of per-channel quantization.
func TestQuantizePerChannelIndependentScales(t *testing.T) {
	w := []float32{
		1000, -500, 250, 0,
		0.001, -0.0005, 0.00025, 0,
	}
	pc, err := QuantizePerChannel(w, 2, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Scales[0] <= pc.Scales[1]*1e5 {
		t.Fatalf("scales not independent: %g vs %g", pc.Scales[0], pc.Scales[1])
	}
	buf := make([]float32, 4)
	pc.Dequantize(1, buf)
	if d := math.Abs(float64(buf[0] - 0.001)); d > float64(pc.MaxError(1)) {
		t.Fatalf("small channel lost precision: %g vs 0.001", buf[0])
	}
}

func TestQuantizePerChannelZeroRow(t *testing.T) {
	pc, err := QuantizePerChannel(make([]float32, 8), 2, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	for oc := 0; oc < 2; oc++ {
		if pc.Scales[oc] != 1 || pc.RowSum[oc] != 0 {
			t.Fatalf("zero row: scale %g rowsum %d", pc.Scales[oc], pc.RowSum[oc])
		}
	}
}

func TestQuantizePerChannelRejectsNonFinite(t *testing.T) {
	cases := [][]float32{
		{1, float32(math.Inf(1)), 2, 3},
		{1, float32(math.Inf(-1)), 2, 3},
		{1, float32(math.NaN()), 2, 3},
	}
	for _, w := range cases {
		if _, err := QuantizePerChannel(w, 1, 4, 16); err == nil {
			t.Fatalf("weights %v: expected rejection", w)
		}
	}
	if _, err := QuantizePerChannel([]float32{1}, 1, 1, 0); err == nil {
		t.Fatal("kp < k: expected rejection")
	}
	if _, err := QuantizePerChannel([]float32{1}, 0, 1, 16); err == nil {
		t.Fatal("outC = 0: expected rejection")
	}
}

func TestAffineFor(t *testing.T) {
	af, err := AffineFor(-1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Zero must map exactly to the zero point and back.
	if back := af.Scale * (0 - float32(af.Zero)); back != -af.Scale*float32(af.Zero) {
		t.Fatal("arithmetic sanity")
	}
	zeroLevel := float64(af.Zero)
	if math.Abs(float64(-1)/float64(af.Scale)+zeroLevel) > 1 {
		t.Fatalf("min not representable: scale %g zero %d", af.Scale, af.Zero)
	}
	// Positive-only range still includes zero.
	af, err = AffineFor(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if af.Zero != 0 {
		t.Fatalf("positive-only range: zero point %d, want 0", af.Zero)
	}
	if math.Abs(float64(af.Scale)-5.0/255) > 1e-6 {
		t.Fatalf("positive-only scale %g, want %g", af.Scale, 5.0/255)
	}
	// Degenerate all-zero range.
	af, err = AffineFor(0, 0)
	if err != nil || af.Scale != 1 || af.Zero != 0 {
		t.Fatalf("degenerate range: %+v, %v", af, err)
	}
}

func TestAffineForRejectsNonFinite(t *testing.T) {
	bad := [][2]float32{
		{float32(math.Inf(-1)), 1},
		{-1, float32(math.Inf(1))},
		{float32(math.NaN()), 1},
		{-1, float32(math.NaN())},
		{3, -3}, // inverted
	}
	for _, c := range bad {
		if _, err := AffineFor(c[0], c[1]); err == nil {
			t.Fatalf("range [%g, %g]: expected rejection", c[0], c[1])
		}
	}
	// Finite bounds whose span overflows float32 must also be rejected.
	if _, err := AffineFor(-math.MaxFloat32, math.MaxFloat32); err == nil {
		t.Fatal("overflowing span: expected rejection")
	}
}

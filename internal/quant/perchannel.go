package quant

import (
	"fmt"
	"math"
)

// Per-channel weight quantization for the int8 compute path. The global
// Quantizer above serves the boundary codec (activations in [0, Range]);
// weights are signed and their dynamic range varies per output channel,
// so each channel row gets its own symmetric int8 scale:
//
//	w[oc][k] ≈ Scales[oc] · Data[oc][k],  Data ∈ [-127, 127]
//
// Rows are padded from K to KP (the int8 GEMM packing granularity) with
// zeros, and each row's code sum is precomputed for the activation
// zero-point correction: Σ_k w_q·(x_q − zp) = Σ w_q·x_q − zp·RowSum.

// PerChannel holds per-output-channel symmetrically quantized int8
// weights in the packed layout the int8 GEMM consumes.
type PerChannel struct {
	OutC, K, KP int
	Data        []int8    // [OutC][KP], zero-padded beyond K
	Scales      []float32 // per-channel step, len OutC
	RowSum      []int32   // Σ_k Data[oc][k], len OutC
}

// QuantizePerChannel quantizes w (row-major [outC][k]) to int8 with one
// symmetric scale per row, padding rows to kp. Every weight must be
// finite and every resulting scale finite and positive (an all-zero row
// takes scale 1 and codes 0), mirroring the codec's rejection of
// non-finite operating points: a single +Inf weight would otherwise
// poison the whole channel's scale silently.
func QuantizePerChannel(w []float32, outC, k, kp int) (*PerChannel, error) {
	if outC <= 0 || k <= 0 {
		return nil, fmt.Errorf("quant: per-channel shape %d×%d not positive", outC, k)
	}
	if kp < k {
		return nil, fmt.Errorf("quant: kp %d below k %d", kp, k)
	}
	if len(w) < outC*k {
		return nil, fmt.Errorf("quant: weight slice %d shorter than %d×%d", len(w), outC, k)
	}
	pc := &PerChannel{
		OutC:   outC,
		K:      k,
		KP:     kp,
		Data:   make([]int8, outC*kp),
		Scales: make([]float32, outC),
		RowSum: make([]int32, outC),
	}
	for oc := 0; oc < outC; oc++ {
		row := w[oc*k : (oc+1)*k]
		var maxAbs float32
		for _, v := range row {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return nil, fmt.Errorf("quant: non-finite weight %g in channel %d", v, oc)
			}
			if a := float32(math.Abs(float64(v))); a > maxAbs {
				maxAbs = a
			}
		}
		scale := maxAbs / 127
		if maxAbs == 0 {
			scale = 1 // all-zero row: codes are all zero, scale is arbitrary
		}
		if math.IsInf(float64(scale), 0) || math.IsNaN(float64(scale)) || scale <= 0 {
			return nil, fmt.Errorf("quant: channel %d scale %g not finite-positive", oc, scale)
		}
		pc.Scales[oc] = scale
		dst := pc.Data[oc*kp : (oc+1)*kp]
		var sum int32
		for i, v := range row {
			q := int8(math.Round(float64(v / scale)))
			dst[i] = q
			sum += int32(q)
		}
		pc.RowSum[oc] = sum
	}
	return pc, nil
}

// Dequantize reconstructs channel oc's weights (K values, unpadded) into
// dst; used by tests and accuracy analysis.
func (pc *PerChannel) Dequantize(oc int, dst []float32) {
	row := pc.Data[oc*pc.KP : oc*pc.KP+pc.K]
	s := pc.Scales[oc]
	for i, q := range row {
		dst[i] = s * float32(q)
	}
}

// MaxError returns channel oc's worst-case absolute rounding error:
// half its scale.
func (pc *PerChannel) MaxError(oc int) float32 { return pc.Scales[oc] / 2 }

// Affine is a uint8 affine activation quantizer: x ≈ Scale·(q − Zero).
// Level Zero represents exact 0.0, so zero padding and sparsity survive
// quantization.
type Affine struct {
	Scale float32
	Zero  uint8
}

// AffineFor picks affine parameters covering [mn, mx], extended to
// include zero so 0.0 is exactly representable. Non-finite bounds are
// rejected (mirroring the codec's +Inf-range rejection); a degenerate
// all-zero range quantizes everything to level 0 with scale 1.
func AffineFor(mn, mx float32) (Affine, error) {
	if math.IsNaN(float64(mn)) || math.IsNaN(float64(mx)) ||
		math.IsInf(float64(mn), 0) || math.IsInf(float64(mx), 0) {
		return Affine{}, fmt.Errorf("quant: non-finite activation range [%g, %g]", mn, mx)
	}
	if mn > mx {
		return Affine{}, fmt.Errorf("quant: inverted activation range [%g, %g]", mn, mx)
	}
	if mn > 0 {
		mn = 0
	}
	if mx < 0 {
		mx = 0
	}
	scale := (mx - mn) / 255
	if scale == 0 {
		return Affine{Scale: 1, Zero: 0}, nil
	}
	if math.IsInf(float64(scale), 0) {
		return Affine{}, fmt.Errorf("quant: activation range [%g, %g] overflows the affine scale", mn, mx)
	}
	zp := math.Round(float64(-mn) / float64(scale))
	if zp < 0 {
		zp = 0
	}
	if zp > 255 {
		zp = 255
	}
	return Affine{Scale: scale, Zero: uint8(zp)}, nil
}

// InvScale returns 1/Scale, the multiplier the quantizing packers use.
func (a Affine) InvScale() float32 { return 1 / a.Scale }

// MaxError bounds the per-element error for inputs inside the range the
// parameters were derived for: half a step of rounding plus up to half a
// step of zero-point grid shift.
func (a Affine) MaxError() float32 { return a.Scale }

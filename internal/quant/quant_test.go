package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLevelsAndStep(t *testing.T) {
	q := New(4, 3.0)
	if q.Levels() != 16 {
		t.Fatalf("Levels = %d, want 16", q.Levels())
	}
	if got, want := q.Step(), float32(3.0/15.0); got != want {
		t.Fatalf("Step = %v, want %v", got, want)
	}
}

func TestZeroMapsToZero(t *testing.T) {
	q := New(4, 2.0)
	if q.Encode(0) != 0 {
		t.Fatal("zero must encode to level 0")
	}
	if q.Decode(0) != 0 {
		t.Fatal("level 0 must decode to exactly zero")
	}
	if q.Encode(-1) != 0 {
		t.Fatal("negative inputs clamp to level 0")
	}
}

func TestClampAboveRange(t *testing.T) {
	q := New(4, 1.0)
	if q.Encode(5.0) != 15 {
		t.Fatalf("Encode(5.0) = %d, want 15", q.Encode(5.0))
	}
}

func TestRoundTripErrorBound(t *testing.T) {
	q := New(4, 1.8)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		x := rng.Float32() * q.Range
		y := q.Decode(q.Encode(x))
		d := x - y
		if d < 0 {
			d = -d
		}
		if d > q.MaxError()*1.0001 {
			t.Fatalf("round-trip error %v exceeds bound %v for x=%v", d, q.MaxError(), x)
		}
	}
}

// Property: quantization is idempotent — Apply twice equals Apply once.
func TestIdempotenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := New(1+rng.Intn(8), 0.5+rng.Float32()*3)
		xs := make([]float32, 64)
		for i := range xs {
			xs[i] = rng.Float32() * q.Range * 1.2
		}
		once := append([]float32(nil), xs...)
		q.Apply(once)
		twice := append([]float32(nil), once...)
		q.Apply(twice)
		for i := range once {
			if once[i] != twice[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: quantization is monotone non-decreasing.
func TestMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := New(2+rng.Intn(6), 1+rng.Float32()*2)
		a := rng.Float32() * q.Range
		b := rng.Float32() * q.Range
		if a > b {
			a, b = b, a
		}
		return q.Encode(a) <= q.Encode(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeSlice(t *testing.T) {
	q := New(4, 1.5)
	xs := []float32{0, 0.1, 0.75, 1.5, 2.0}
	levels := q.EncodeSlice(xs)
	back := q.DecodeSlice(levels)
	if len(back) != len(xs) {
		t.Fatal("length mismatch")
	}
	if back[0] != 0 {
		t.Fatal("zero must survive the round trip exactly")
	}
	if back[3] != 1.5 {
		t.Fatalf("full-range value must survive exactly, got %v", back[3])
	}
	if back[4] != 1.5 {
		t.Fatalf("out-of-range clamps to Range, got %v", back[4])
	}
}

func TestBadArgsPanic(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 1) },
		func() { New(17, 1) },
		func() { New(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

// TestZeroThresholdBoundary proves the fused codec's contract: for every
// finite non-NaN x, Encode(x) == 0 exactly when x < ZeroThreshold().
// The threshold itself and its immediate float32 neighbours are the
// critical probes — one ULP of slack there silently corrupts payloads.
func TestZeroThresholdBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, bits := range []int{1, 2, 4, 8, 12, 16} {
		for _, r := range []float32{1e-38, 1e-6, 0.5, 1, 6, 1e6, 1e30, 3.4e38} {
			q := New(bits, r)
			zt := q.ZeroThreshold()
			probes := []float32{
				0, -1, zt, nextUp(zt), nextDown(zt),
				nextDown(nextDown(zt)), 0.5 * q.Step(), q.Step(),
			}
			for i := 0; i < 200; i++ {
				probes = append(probes, float32(rng.Float64())*q.Step())
			}
			for _, x := range probes {
				isZero := q.Encode(x) == 0
				belowT := x < zt
				if isZero != belowT {
					t.Fatalf("bits=%d range=%v: x=%v Encode=%d but x<T(%v)=%v",
						bits, r, x, q.Encode(x), zt, belowT)
				}
			}
		}
	}
}

func nextUp(x float32) float32 {
	return math.Nextafter32(x, float32(math.Inf(1)))
}

func nextDown(x float32) float32 {
	return math.Nextafter32(x, float32(math.Inf(-1)))
}

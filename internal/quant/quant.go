// Package quant implements the low-precision linear quantization ADCNN
// applies to Conv-node outputs (paper Section 4.2): non-zero activations
// in [0, range] are rounded to the nearest of 2^bits uniformly spaced
// levels. Training uses the straight-through estimator, so the backward
// pass treats the quantizer as the identity inside its range.
package quant

import "math"

// Quantizer maps float32 activations in [0, Range] onto 2^Bits levels.
// Level 0 represents exact zero, preserving the sparsity created by the
// clipped ReLU.
type Quantizer struct {
	Bits  int
	Range float32
}

// New creates a quantizer. bits must be in [1, 16] and rng > 0.
func New(bits int, rng float32) Quantizer {
	if bits < 1 || bits > 16 {
		panic("quant: bits out of [1,16]")
	}
	if rng <= 0 {
		panic("quant: range must be positive")
	}
	return Quantizer{Bits: bits, Range: rng}
}

// Levels returns the number of representable values (including zero).
func (q Quantizer) Levels() int { return 1 << q.Bits }

// Step returns the quantization step size.
func (q Quantizer) Step() float32 { return q.Range / float32(q.Levels()-1) }

// Encode maps x (clamped to [0, Range]) to its level index.
func (q Quantizer) Encode(x float32) uint16 {
	if x <= 0 {
		return 0
	}
	if x >= q.Range {
		return uint16(q.Levels() - 1)
	}
	return uint16(math.Round(float64(x / q.Step())))
}

// Decode maps a level index back to its representative value.
func (q Quantizer) Decode(level uint16) float32 {
	return float32(level) * q.Step()
}

// ZeroThreshold returns the exact level-0 boundary T: for every finite,
// non-NaN x, Encode(x) == 0 if and only if x < T. The fused boundary
// codec classifies zero runs with one float compare against T instead of
// a divide + round per element, so T must reproduce Encode's rounding
// bit-exactly: it is the smallest float32 whose float32 quotient by
// Step() reaches 0.5 (math.Round's half-away-from-zero cutover). The
// candidate 0.5·Step() is nudged by ULPs until it straddles the cutover,
// which terminates within a couple of steps.
func (q Quantizer) ZeroThreshold() float32 {
	step := q.Step()
	if math.IsInf(float64(step), 1) {
		// Range = +Inf: every finite x has Round(x/step) == 0, matching
		// Encode, so everything below +Inf is a zero.
		return step
	}
	t := 0.5 * step
	for t > 0 {
		prev := math.Nextafter32(t, 0)
		if prev/step >= 0.5 {
			t = prev
			continue
		}
		break
	}
	for t/step < 0.5 {
		t = math.Nextafter32(t, float32(math.Inf(1)))
	}
	return t
}

// Apply quantizes x in place (round-trip Encode∘Decode over a slice).
func (q Quantizer) Apply(xs []float32) {
	for i, v := range xs {
		xs[i] = q.Decode(q.Encode(v))
	}
}

// EncodeSlice quantizes every element of xs into level indices.
func (q Quantizer) EncodeSlice(xs []float32) []uint16 {
	out := make([]uint16, len(xs))
	for i, v := range xs {
		out[i] = q.Encode(v)
	}
	return out
}

// DecodeSlice reverses EncodeSlice.
func (q Quantizer) DecodeSlice(levels []uint16) []float32 {
	out := make([]float32, len(levels))
	for i, l := range levels {
		out[i] = q.Decode(l)
	}
	return out
}

// MaxError returns the worst-case absolute rounding error for inputs in
// [0, Range]: half a step.
func (q Quantizer) MaxError() float32 { return q.Step() / 2 }

package perfmodel

import (
	"testing"
	"time"

	"adcnn/internal/models"
)

func TestPiRunsVGG16NearTable3(t *testing.T) {
	// Table 3: single-device VGG16 computation = 1586.53 ms.
	d := RaspberryPi()
	got := d.Time(models.VGG16().TotalFLOPs(), models.VGG16().TotalMemBytes())
	if got < 1400*time.Millisecond || got > 1750*time.Millisecond {
		t.Fatalf("Pi VGG16 = %v, want ≈1586 ms", got)
	}
}

func TestCloudRunsVGG16NearTable3(t *testing.T) {
	// Table 3: remote-cloud VGG16 computation = 98.94 ms.
	d := CloudServer()
	got := d.ComputeTime(models.VGG16().TotalFLOPs())
	if got < 85*time.Millisecond || got > 115*time.Millisecond {
		t.Fatalf("cloud VGG16 = %v, want ≈99 ms", got)
	}
}

func TestWANUploadNearTable3(t *testing.T) {
	// Table 3: remote-cloud input/output transmission = 502.21 ms,
	// dominated by uploading the input image.
	up := WAN().TransferTime(models.VGG16().InputBytes())
	if up < 400*time.Millisecond || up > 600*time.Millisecond {
		t.Fatalf("WAN upload = %v, want ≈500 ms", up)
	}
}

func TestComputeTimeZeroAndNegative(t *testing.T) {
	d := RaspberryPi()
	if d.ComputeTime(0) != 0 || d.ComputeTime(-5) != 0 {
		t.Fatal("non-positive work must cost zero time")
	}
}

func TestTransferTimeScalesWithBytes(t *testing.T) {
	l := WiFi()
	small := l.TransferTime(1000)
	big := l.TransferTime(1000000)
	if big <= small {
		t.Fatal("more bytes must take longer")
	}
	// Latency floor applies to tiny messages.
	if l.TransferTime(1) < 400*time.Microsecond {
		t.Fatal("per-message latency must apply")
	}
}

func TestSlowWiFiSlower(t *testing.T) {
	b := int64(1 << 20)
	if WiFiSlow().TransferTime(b) <= WiFi().TransferTime(b) {
		t.Fatal("12.66 Mbps must be slower than 87.72 Mbps")
	}
}

func TestEnergyModel(t *testing.T) {
	e := PiEnergy()
	// 1s busy + 1s idle.
	j := e.Energy(time.Second, 2*time.Second)
	want := e.ActiveWatts + e.IdleWatts
	if j < want-1e-9 || j > want+1e-9 {
		t.Fatalf("Energy = %v, want %v", j, want)
	}
	// busy > total clamps idle at zero.
	if e.Energy(2*time.Second, time.Second) != 2*e.ActiveWatts {
		t.Fatal("idle clamp failed")
	}
}

func TestGoodput(t *testing.T) {
	l := LinkModel{BandwidthMbps: 80, Efficiency: 0.5}
	if l.GoodputBps() != 80*1e6*0.5/8 {
		t.Fatalf("GoodputBps = %v", l.GoodputBps())
	}
	l2 := LinkModel{BandwidthMbps: 8}
	if l2.GoodputBps() != 1e6 {
		t.Fatalf("default efficiency wrong: %v", l2.GoodputBps())
	}
}

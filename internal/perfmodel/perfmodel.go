// Package perfmodel provides the analytic device and link models that
// substitute for the paper's physical testbed (Raspberry Pi 3B+ cluster,
// WiFi links, EC2 p3.2xlarge cloud). Devices are characterised by an
// effective FLOP/s rate calibrated so that full VGG16 inference takes
// ≈1586 ms on a Pi and ≈99 ms on the cloud server — the paper's Table 3
// measurements — and links by bandwidth, per-message latency and a
// protocol-efficiency factor.
package perfmodel

import "time"

// DeviceModel describes a compute node by a two-term roofline-style
// cost: t = FLOPs/FLOPS + featureMapBytes/MemBPS. The memory term
// captures what the paper's Figure 3 measures on the Raspberry Pi —
// early CNN blocks with huge feature maps are memory-bound and take far
// longer than their FLOP count suggests, while late blocks with small,
// cache-resident maps are fast.
type DeviceModel struct {
	Name string
	// FLOPS is the effective sustained floating-point rate (a
	// calibration constant folding in framework overhead, not a
	// hardware peak).
	FLOPS float64
	// MemBPS is the effective feature-map bandwidth; 0 disables the
	// memory term (appropriate for the GPU cloud server).
	MemBPS float64
}

// Time returns how long a workload of flops compute and memBytes of
// feature-map traffic takes on the device.
func (d DeviceModel) Time(flops, memBytes int64) time.Duration {
	var seconds float64
	if flops > 0 {
		seconds += float64(flops) / d.FLOPS
	}
	if memBytes > 0 && d.MemBPS > 0 {
		seconds += float64(memBytes) / d.MemBPS
	}
	return time.Duration(seconds * float64(time.Second))
}

// ComputeTime returns the pure-compute time (no memory term).
func (d DeviceModel) ComputeTime(flops int64) time.Duration {
	return d.Time(flops, 0)
}

// LinkModel describes a network connection.
type LinkModel struct {
	Name          string
	BandwidthMbps float64
	LatencyMs     float64 // fixed per-message cost
	// Efficiency is the goodput fraction of the nominal bandwidth
	// (protocol overhead, TCP dynamics over long RTTs). 0 means 1.
	Efficiency float64
}

// TransferTime returns the wire time for a message of the given size.
func (l LinkModel) TransferTime(bytes int64) time.Duration {
	eff := l.Efficiency
	if eff <= 0 {
		eff = 1
	}
	seconds := l.LatencyMs/1e3 + float64(bytes)*8/(l.BandwidthMbps*1e6*eff)
	return time.Duration(seconds * float64(time.Second))
}

// GoodputBps returns the effective bytes-per-second rate (no latency).
func (l LinkModel) GoodputBps() float64 {
	eff := l.Efficiency
	if eff <= 0 {
		eff = 1
	}
	return l.BandwidthMbps * 1e6 * eff / 8
}

// RaspberryPi is the edge device model. The pair (FLOPS, MemBPS) is
// calibrated so full VGG16 (≈31 GFLOPs, ≈72 MB of feature-map traffic)
// takes 1586.53 ms — Table 3's single-device measurement — with the
// memory term dominating the early blocks, matching Figure 3's
// early-block-heavy latency profile.
func RaspberryPi() DeviceModel {
	return DeviceModel{Name: "raspberry-pi-3b+", FLOPS: 100e9, MemBPS: 56.6e6}
}

// CloudServer is the EC2 p3.2xlarge model. VGG16 takes 98.94 ms
// (Table 3), giving ≈310 effective GFLOP/s; the V100's HBM makes the
// memory term negligible.
func CloudServer() DeviceModel {
	return DeviceModel{Name: "ec2-p3.2xlarge", FLOPS: 310e9}
}

// WiFi is the edge LAN (paper: measured 87.72 Mbps).
func WiFi() LinkModel {
	return LinkModel{Name: "wifi-87.72", BandwidthMbps: 87.72, LatencyMs: 0.5, Efficiency: 0.85}
}

// WiFiSlow is the degraded edge LAN used in Figure 12 (12.66 Mbps).
func WiFiSlow() LinkModel {
	return LinkModel{Name: "wifi-12.66", BandwidthMbps: 12.66, LatencyMs: 0.5, Efficiency: 0.85}
}

// WAN is the edge→cloud uplink (paper: 61.30 Mbps). The low efficiency
// models TCP goodput over a high-RTT path; it is calibrated so uploading
// one 224×224×3 float32 image ≈ 480 ms, matching Table 3's 502 ms
// input/output transmission for the remote-cloud scheme.
func WAN() LinkModel {
	return LinkModel{Name: "wan-61.30", BandwidthMbps: 61.30, LatencyMs: 25, Efficiency: 0.17}
}

// EnergyModel converts busy/idle time into joules (Figure 13's meter).
type EnergyModel struct {
	ActiveWatts float64
	IdleWatts   float64
}

// PiEnergy returns Raspberry Pi 3B+ style power constants.
func PiEnergy() EnergyModel {
	return EnergyModel{ActiveWatts: 3.7, IdleWatts: 1.9}
}

// Energy returns joules consumed over a window with the given busy time.
func (e EnergyModel) Energy(busy, total time.Duration) float64 {
	idle := total - busy
	if idle < 0 {
		idle = 0
	}
	return e.ActiveWatts*busy.Seconds() + e.IdleWatts*idle.Seconds()
}

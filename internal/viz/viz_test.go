package viz

import (
	"bytes"
	"testing"

	"adcnn/internal/dataset"
	"adcnn/internal/models"
	"adcnn/internal/tensor"
)

func setup(t *testing.T) (*models.Model, *dataset.Set) {
	t.Helper()
	cfg := models.VGGSim()
	m, err := models.Build(cfg, models.Options{}, 33)
	if err != nil {
		t.Fatal(err)
	}
	set := dataset.Classification(24, cfg.Classes, cfg.InputC, cfg.InputH, cfg.InputW, 0.2, 34)
	return m, set
}

func TestTopPatchesSizesGrowWithDepth(t *testing.T) {
	m, set := setup(t)
	p1, err := TopPatches(m, set, 1, 0, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	p5, err := TopPatches(m, set, 5, 0, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != 4 || len(p5) != 4 {
		t.Fatalf("patch counts %d %d", len(p1), len(p5))
	}
	// Figure 2(d): deeper filters respond to larger fragments.
	if p5[0].Size <= p1[0].Size {
		t.Fatalf("block-5 fragments (%dpx) must exceed block-1 fragments (%dpx)",
			p5[0].Size, p1[0].Size)
	}
	// Responses are sorted strongest first.
	for i := 1; i < len(p1); i++ {
		if p1[i].Response > p1[i-1].Response {
			t.Fatal("patches must be sorted by response")
		}
	}
	// Block-1 fragment size = its 3x3 receptive field.
	if p1[0].Size != 3 {
		t.Fatalf("block-1 patch size = %d, want 3 (one 3x3 conv)", p1[0].Size)
	}
}

func TestTopPatchesValidation(t *testing.T) {
	m, set := setup(t)
	if _, err := TopPatches(m, set, 0, 0, 2, 4); err == nil {
		t.Fatal("block 0 must be rejected")
	}
	if _, err := TopPatches(m, set, 1, 999, 2, 4); err == nil {
		t.Fatal("out-of-range channel must be rejected")
	}
}

func TestWritePGMFormat(t *testing.T) {
	x := tensor.New(1, 3, 4, 5)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	var buf bytes.Buffer
	if err := WritePGM(&buf, x); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P5\n5 4\n255\n")) {
		t.Fatalf("bad PGM header: %q", out[:12])
	}
	if len(out) != len("P5\n5 4\n255\n")+20 {
		t.Fatalf("PGM body length %d", len(out))
	}
	// Constant image must not divide by zero.
	flat := tensor.New(1, 1, 2, 2)
	if err := WritePGM(&buf, flat); err != nil {
		t.Fatal(err)
	}
}

func TestPatchGridGeometry(t *testing.T) {
	m, set := setup(t)
	ps, err := TopPatches(m, set, 2, 1, 6, 12)
	if err != nil {
		t.Fatal(err)
	}
	grid := PatchGrid(ps, 3)
	size := ps[0].Size
	wantH := 2*size + 1 // 2 rows with separator
	wantW := 3*size + 2 // 3 cols with separators
	if grid.Shape[2] != wantH || grid.Shape[3] != wantW {
		t.Fatalf("grid %dx%d, want %dx%d", grid.Shape[2], grid.Shape[3], wantH, wantW)
	}
	if PatchGrid(nil, 3).Len() != 1 {
		t.Fatal("empty patch list must yield a placeholder")
	}
}

// Package viz reproduces the paper's Section 2.3 / Figure 2(d)
// feature-interpretation experiment: for a filter at a given layer-block
// depth, find the input fragments across a dataset that yield the
// largest response, crop them at the filter's receptive field, and
// render them as a grayscale image grid. Early blocks should surface
// small texture-like fragments and deeper blocks larger, shape-like
// ones — the observation that motivates FDSP.
package viz

import (
	"fmt"
	"io"
	"sort"

	"adcnn/internal/dataset"
	"adcnn/internal/models"
	"adcnn/internal/nn"
	"adcnn/internal/tensor"
)

// Patch is one top-activating input fragment.
type Patch struct {
	Sample   int            // dataset index
	Response float32        // filter activation
	Y, X     int            // receptive-field top-left in the input
	Size     int            // receptive-field side length
	Pixels   *tensor.Tensor // [1,C,Size,Size] crop (zero-padded at borders)
}

// TopPatches scans up to samples dataset items, runs the first `block`
// blocks of the model's Front, and returns the k patches with the
// strongest response of the given output channel.
func TopPatches(m *models.Model, set *dataset.Set, block, channel, k, samples int) ([]Patch, error) {
	if block < 1 || block > m.Cfg.Separable {
		return nil, fmt.Errorf("viz: block %d out of [1,%d]", block, m.Cfg.Separable)
	}
	if samples > set.Len() {
		samples = set.Len()
	}
	prefix := nn.NewSequential("prefix", m.Front.Layers[:block]...)
	rf := receptiveField(m.Cfg, block)
	stride := strideAt(m.Cfg, block)

	var patches []Patch
	for i := 0; i < samples; i++ {
		x, _ := set.Batch(i, 1)
		y := prefix.Forward(x, false)
		if channel >= y.Shape[1] {
			return nil, fmt.Errorf("viz: channel %d out of range (%d)", channel, y.Shape[1])
		}
		oh, ow := y.Shape[2], y.Shape[3]
		// Strongest position of this channel in this sample.
		best, by, bx := y.At(0, channel, 0, 0), 0, 0
		for yy := 0; yy < oh; yy++ {
			for xx := 0; xx < ow; xx++ {
				if v := y.At(0, channel, yy, xx); v > best {
					best, by, bx = v, yy, xx
				}
			}
		}
		// Map the unit back to its input receptive field.
		cy := by*stride + stride/2
		cx := bx*stride + stride/2
		y0 := cy - rf
		x0 := cx - rf
		patches = append(patches, Patch{
			Sample: i, Response: best,
			Y: y0, X: x0, Size: 2*rf + 1,
			Pixels: cropPadded(x, y0, x0, 2*rf+1),
		})
	}
	sort.Slice(patches, func(a, b int) bool { return patches[a].Response > patches[b].Response })
	if k < len(patches) {
		patches = patches[:k]
	}
	return patches, nil
}

// receptiveField returns the half-width of block `b`'s receptive field.
func receptiveField(cfg models.Config, b int) int {
	need := 0
	geoms := cfg.HaloGeoms(b)
	for i := len(geoms) - 1; i >= 0; i-- {
		need = need*geoms[i][1] + (geoms[i][0]-1)/2
	}
	return need
}

// strideAt returns the cumulative input stride of block b's output.
func strideAt(cfg models.Config, b int) int {
	s := 1
	for _, blk := range cfg.Blocks[:b] {
		dh, _ := blk.Downsample()
		s *= dh
	}
	return s
}

// cropPadded extracts a size×size crop at (y0,x0), zero-padding outside
// the image.
func cropPadded(x *tensor.Tensor, y0, x0, size int) *tensor.Tensor {
	c, h, w := x.Shape[1], x.Shape[2], x.Shape[3]
	out := tensor.New(1, c, size, size)
	for ch := 0; ch < c; ch++ {
		for dy := 0; dy < size; dy++ {
			sy := y0 + dy
			if sy < 0 || sy >= h {
				continue
			}
			for dx := 0; dx < size; dx++ {
				sx := x0 + dx
				if sx >= 0 && sx < w {
					out.Set(x.At(0, ch, sy, sx), 0, ch, dy, dx)
				}
			}
		}
	}
	return out
}

// WritePGM renders a tensor's first channel (or the channel mean) as a
// binary PGM image, normalised to the 0-255 range. PGM needs no
// third-party codecs and every image viewer opens it.
func WritePGM(w io.Writer, t *tensor.Tensor) error {
	c, h, wd := t.Shape[1], t.Shape[2], t.Shape[3]
	gray := make([]float32, h*wd)
	for ch := 0; ch < c; ch++ {
		for i := 0; i < h*wd; i++ {
			gray[i] += t.Data[ch*h*wd+i] / float32(c)
		}
	}
	lo, hi := gray[0], gray[0]
	for _, v := range gray {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", wd, h); err != nil {
		return err
	}
	buf := make([]byte, len(gray))
	for i, v := range gray {
		buf[i] = byte(255 * (v - lo) / (hi - lo))
	}
	_, err := w.Write(buf)
	return err
}

// PatchGrid arranges patches into one image (row-major, 1px separators).
func PatchGrid(patches []Patch, cols int) *tensor.Tensor {
	if len(patches) == 0 {
		return tensor.New(1, 1, 1, 1)
	}
	size := patches[0].Size
	c := patches[0].Pixels.Shape[1]
	rows := (len(patches) + cols - 1) / cols
	h := rows*size + rows - 1
	w := cols*size + cols - 1
	out := tensor.New(1, c, h, w)
	for i, p := range patches {
		r, cc := i/cols, i%cols
		for ch := 0; ch < c; ch++ {
			for y := 0; y < size; y++ {
				for x := 0; x < size; x++ {
					out.Set(p.Pixels.At(0, ch, y, x), 0, ch, r*(size+1)+y, cc*(size+1)+x)
				}
			}
		}
	}
	return out
}

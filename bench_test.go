// Package adcnn's repository-level benchmarks regenerate every table and
// figure of the paper's evaluation (run with `go test -bench=. -benchmem`).
// Each benchmark reports the paper's headline quantity as a custom metric
// so the shape comparison is visible in the bench output:
//
//	BenchmarkFigure11   ... speedup-vs-single=6.6 speedup-vs-cloud=2.6
//
// Ablation benchmarks at the bottom cover the design choices DESIGN.md
// calls out (pipelining, EWMA decay, allocation policy, halo reuse,
// quantization width).
package adcnn

import (
	"context"
	"testing"
	"time"

	"adcnn/internal/baseline"
	"adcnn/internal/cluster"
	"adcnn/internal/core"
	"adcnn/internal/experiments"
	"adcnn/internal/fdsp"
	"adcnn/internal/models"
	"adcnn/internal/perfmodel"
	"adcnn/internal/sched"
	"adcnn/internal/tensor"
)

// ---- Paper artifacts ----------------------------------------------------

// BenchmarkFigure3 regenerates the per-layer-block workload profile.
func BenchmarkFigure3(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		r := experiments.Figure3()
		share = r.EarlyShare("VGG16", 4)
	}
	b.ReportMetric(share, "vgg16-first4-share")
}

// BenchmarkFigure10 runs the (quick) accuracy experiment: original
// training plus full progressive retraining for one partition.
func BenchmarkFigure10(b *testing.B) {
	var drop float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAccuracy(experiments.QuickAccuracySetup())
		if err != nil {
			b.Fatal(err)
		}
		row := res.Rows[0]
		drop = row.OrigMetric - row.FinalMetric
	}
	b.ReportMetric(drop, "accuracy-drop")
}

// BenchmarkTable1 measures the retraining cost (epochs per stage).
func BenchmarkTable1(b *testing.B) {
	var epochs float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAccuracy(experiments.QuickAccuracySetup())
		if err != nil {
			b.Fatal(err)
		}
		epochs = float64(res.Rows[0].TotalEpochs())
	}
	b.ReportMetric(epochs, "total-epochs")
}

// BenchmarkTable2 measures the Conv-node output compression ratio.
func BenchmarkTable2(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAccuracy(experiments.QuickAccuracySetup())
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.Rows[0].CompressionRatio
	}
	b.ReportMetric(ratio, "compressed/raw")
}

// BenchmarkFigure11 compares ADCNN with single-device and remote-cloud.
func BenchmarkFigure11(b *testing.B) {
	var vsSingle, vsCloud float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure11(20, experiments.DefaultSimOptions())
		if err != nil {
			b.Fatal(err)
		}
		vsSingle, vsCloud = r.MeanSpeedups()
	}
	b.ReportMetric(vsSingle, "speedup-vs-single")
	b.ReportMetric(vsCloud, "speedup-vs-cloud")
}

// BenchmarkTable3 regenerates the VGG16 latency breakdown.
func BenchmarkTable3(b *testing.B) {
	var adcnnMs float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table3(experiments.DefaultSimOptions())
		if err != nil {
			b.Fatal(err)
		}
		adcnnMs = float64(r.Rows[0].Total()) / float64(time.Millisecond)
	}
	b.ReportMetric(adcnnMs, "adcnn-vgg16-ms")
}

// BenchmarkFigure12 measures the pruning effect at two link rates.
func BenchmarkFigure12(b *testing.B) {
	var fast, slow float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure12(10, 1)
		if err != nil {
			b.Fatal(err)
		}
		fast, slow = r.MeanReduction(87.72), r.MeanReduction(12.66)
	}
	b.ReportMetric(fast, "saving%@87.72")
	b.ReportMetric(slow, "saving%@12.66")
}

// BenchmarkFigure13 sweeps the cluster size.
func BenchmarkFigure13(b *testing.B) {
	var s8 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure13(10, experiments.DefaultSimOptions())
		if err != nil {
			b.Fatal(err)
		}
		s8 = r.Rows[len(r.Rows)-1].Speedup
	}
	b.ReportMetric(s8, "speedup@8nodes")
}

// BenchmarkFigure14 compares ADCNN with Neurosurgeon and AOFL.
func BenchmarkFigure14(b *testing.B) {
	var vsNS, vsAOFL float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure14(20, experiments.DefaultSimOptions())
		if err != nil {
			b.Fatal(err)
		}
		vsNS, vsAOFL = r.MeanFactors()
	}
	b.ReportMetric(vsNS, "vs-neurosurgeon")
	b.ReportMetric(vsAOFL, "vs-aofl")
}

// BenchmarkFigure15 runs the dynamic-adaptation scenario.
func BenchmarkFigure15(b *testing.B) {
	var recovery float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure15(50, experiments.DefaultSimOptions())
		if err != nil {
			b.Fatal(err)
		}
		recovery = (r.PeakMs - r.SettledMs) / (r.PeakMs - r.BeforeMs)
	}
	b.ReportMetric(recovery, "latency-recovery-frac")
}

// ---- Ablations (DESIGN.md Section 5) -------------------------------------

func newVGGSim(b *testing.B, mutate func(*core.SimConfig)) *core.Sim {
	b.Helper()
	cfg := core.SimConfig{
		Model:      models.VGG16().Systemized(),
		Grid:       fdsp.Grid{Rows: 8, Cols: 8},
		Nodes:      cluster.NewPiCluster(8),
		Central:    cluster.NewDevice(0, perfmodel.RaspberryPi()),
		Link:       perfmodel.WiFi(),
		Pruning:    true,
		PruneRatio: 0.032,
		Gamma:      0.9,
		Pipeline:   true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := core.NewSim(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func meanLatencyMs(s *core.Sim, n int) float64 {
	var sum time.Duration
	for i := 0; i < n; i++ {
		sum += s.RunImage().Latency
	}
	return float64(sum) / float64(n) / float64(time.Millisecond)
}

// BenchmarkAblationPipelining quantifies the compute/transfer overlap.
func BenchmarkAblationPipelining(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = meanLatencyMs(newVGGSim(b, func(c *core.SimConfig) {
			c.InputBytesPerValue = 4
		}), 10)
		without = meanLatencyMs(newVGGSim(b, func(c *core.SimConfig) {
			c.InputBytesPerValue = 4
			c.Pipeline = false
		}), 10)
	}
	b.ReportMetric(with, "pipelined-ms")
	b.ReportMetric(without, "sequential-ms")
}

// BenchmarkAblationGamma sweeps Algorithm 2's decay and reports how many
// images adaptation needs after a mid-run degradation.
func BenchmarkAblationGamma(b *testing.B) {
	adaptImages := func(gamma float64) float64 {
		s := newVGGSim(b, func(c *core.SimConfig) { c.Gamma = gamma })
		events := []cluster.ThrottleEvent{
			{Image: 5, DeviceID: 5, Fraction: 0.45},
			{Image: 5, DeviceID: 6, Fraction: 0.45},
		}
		results := s.RunImages(40, events)
		settled := results[39].Latency
		for i := 6; i < 40; i++ {
			if results[i].Latency <= settled*11/10 {
				return float64(i - 5)
			}
		}
		return 35
	}
	var fast, slow float64
	for i := 0; i < b.N; i++ {
		fast = adaptImages(0.9) // paper's setting
		slow = adaptImages(0.1)
	}
	b.ReportMetric(fast, "images-to-adapt(γ=0.9)")
	b.ReportMetric(slow, "images-to-adapt(γ=0.1)")
}

// BenchmarkAblationAllocator compares Algorithm 3 against round-robin
// under heterogeneity.
func BenchmarkAblationAllocator(b *testing.B) {
	speeds := []float64{12, 12, 12, 12, 5, 5, 3, 3}
	var greedy, rr float64
	for i := 0; i < b.N; i++ {
		a, err := sched.Allocate(64, speeds, 0, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		greedy = a.Bottleneck(speeds)
		roundRobin := make(sched.Allocation, len(speeds))
		for t := 0; t < 64; t++ {
			roundRobin[t%len(speeds)]++
		}
		rr = roundRobin.Bottleneck(speeds)
	}
	b.ReportMetric(greedy, "greedy-bottleneck")
	b.ReportMetric(rr, "roundrobin-bottleneck")
}

// BenchmarkAblationHaloReuse shows why AOFL needs the multi-round reuse
// scheduling: naive halo extension explodes the compute overhead.
func BenchmarkAblationHaloReuse(b *testing.B) {
	cfg := models.VGG16()
	grid := experiments.AOFLGrid(cfg.Name, 8)
	var withReuse, naive float64
	for i := 0; i < b.N; i++ {
		withReuse = float64(baseline.AOFLWithReuse(cfg, grid, 8,
			perfmodel.RaspberryPi(), perfmodel.WiFi(), baseline.DefaultHaloReuse).Total().Milliseconds())
		naive = float64(baseline.AOFLWithReuse(cfg, grid, 8,
			perfmodel.RaspberryPi(), perfmodel.WiFi(), 0).Total().Milliseconds())
	}
	b.ReportMetric(withReuse, "aofl-reuse-ms")
	b.ReportMetric(naive, "aofl-naive-ms")
}

// BenchmarkAblationQuantBits sweeps the quantization width's effect on
// the simulated wire volume (latency at 12.66 Mbps).
func BenchmarkAblationQuantBits(b *testing.B) {
	ratioFor := map[int]float64{2: 0.016, 4: 0.032, 8: 0.064, 16: 0.128}
	out := map[int]float64{}
	for i := 0; i < b.N; i++ {
		for bits, ratio := range ratioFor {
			s := newVGGSim(b, func(c *core.SimConfig) {
				c.Link = perfmodel.WiFiSlow()
				c.PruneRatio = ratio
			})
			out[bits] = meanLatencyMs(s, 5)
		}
	}
	b.ReportMetric(out[4], "ms@4bit")
	b.ReportMetric(out[16], "ms@16bit")
}

// BenchmarkAblationProgressive compares Algorithm 1 against one-shot
// retraining (all modifications applied at once, same total epoch
// budget) — the paper reports one-shot stalls 4-5% below the original.
func BenchmarkAblationProgressive(b *testing.B) {
	var prog, oneShot float64
	for i := 0; i < b.N; i++ {
		setup := experiments.QuickAccuracySetup()
		p, o, err := experiments.ProgressiveVsOneShot(setup)
		if err != nil {
			b.Fatal(err)
		}
		prog, oneShot = p, o
	}
	b.ReportMetric(prog, "progressive-metric")
	b.ReportMetric(oneShot, "oneshot-metric")
}

// BenchmarkFailureResilience measures graceful degradation: the metric
// retained when 1 of 4 tiles is zero-filled (extension experiment).
func BenchmarkFailureResilience(b *testing.B) {
	var retained float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.FailureSweep(experiments.QuickAccuracySetup(), 1)
		if err != nil {
			b.Fatal(err)
		}
		retained = res.Points[1].Metric / res.Points[0].Metric
	}
	b.ReportMetric(retained, "metric-retained@1tile")
}

// BenchmarkStreamThroughput measures pipelined images/second for VGG16.
func BenchmarkStreamThroughput(b *testing.B) {
	var ips float64
	for i := 0; i < b.N; i++ {
		s := newVGGSim(b, nil)
		ips = s.RunStream(50, nil).Throughput
	}
	b.ReportMetric(ips, "images/sec")
}

// BenchmarkHaloExchangeTraffic measures the naive spatial partition's
// halo bytes on a real model (Section 3.1's overhead, which FDSP
// eliminates).
func BenchmarkHaloExchangeTraffic(b *testing.B) {
	m, err := models.Build(models.VGGSim(), models.Options{}, 1)
	if err != nil {
		b.Fatal(err)
	}
	blocks, err := m.ExchangeBlocks()
	if err != nil {
		b.Fatal(err)
	}
	x := testInput()
	var haloKB float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := fdsp.RunWithExchange(blocks, x, fdsp.Grid{Rows: 4, Cols: 4})
		if err != nil {
			b.Fatal(err)
		}
		haloKB = float64(st.HaloBytes) / 1024
	}
	b.ReportMetric(haloKB, "halo-KB/image")
}

// BenchmarkSimThroughput measures the virtual-time simulator itself.
func BenchmarkSimThroughput(b *testing.B) {
	s := newVGGSim(b, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunImage()
	}
}

// BenchmarkDistributedInference measures the live in-process runtime on
// the sim-scale VGG model (real tensors over the wire).
func BenchmarkDistributedInference(b *testing.B) {
	m, err := models.Build(models.VGGSim(), models.Options{
		Grid: fdsp.Grid{Rows: 4, Cols: 4}, ClipLo: 0.05, ClipHi: 2.5, QuantBits: 4,
	}, 1)
	if err != nil {
		b.Fatal(err)
	}
	conns := make([]core.Conn, 4)
	for i := range conns {
		a, bb := core.Pipe()
		conns[i] = a
		go func() { _ = core.NewWorker(i+1, m).Serve(context.Background(), bb) }()
	}
	central, err := core.NewCentral(m, conns, 10*time.Second, 0.9)
	if err != nil {
		b.Fatal(err)
	}
	defer central.Shutdown()
	x := testInput()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := central.Infer(x); err != nil {
			b.Fatal(err)
		}
	}
}

func testInput() *tensor.Tensor {
	t := tensor.New(1, 3, 32, 32)
	for i := range t.Data {
		t.Data[i] = float32(i%13) * 0.1
	}
	return t
}
